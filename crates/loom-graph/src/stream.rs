//! Graph streams and the three stream orderings of §5.1.
//!
//! An *online graph* is a sequence of edge insertions (§1.3). The
//! evaluation streams a stored graph from disk in one of three orders —
//! breadth-first, depth-first, or random — because streaming partitioner
//! quality is sensitive to arrival order (random is "pseudo-adversarial",
//! §1.2). This module derives all three orderings from a
//! [`LabeledGraph`].

use crate::labeled::LabeledGraph;
use crate::types::{EdgeId, Label, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One element of a graph stream: an edge insertion with enough
/// denormalised context (endpoint labels) for a partitioner to act
/// without a side-channel back to the full graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEdge {
    /// Dense id of the edge in the source graph.
    pub id: EdgeId,
    /// First endpoint.
    pub src: VertexId,
    /// Second endpoint.
    pub dst: VertexId,
    /// Label of `src`.
    pub src_label: Label,
    /// Label of `dst`.
    pub dst_label: Label,
}

impl StreamEdge {
    /// The endpoint opposite to `v`, or `None` if `v` is not an
    /// endpoint of this edge — the checked form for callers that
    /// cannot statically guarantee incidence (e.g. code walking a
    /// vertex's edge list rebuilt from an index that may lag).
    pub fn try_other(&self, v: VertexId) -> Option<VertexId> {
        if v == self.src {
            Some(self.dst)
        } else if v == self.dst {
            Some(self.src)
        } else {
            None
        }
    }

    /// The endpoint opposite to `v`.
    ///
    /// # Invariant
    /// `v` must be an endpoint of this edge; callers that cannot
    /// guarantee that must use [`StreamEdge::try_other`]. Violations
    /// panic in debug builds. Release builds return `src` — a defined,
    /// deterministic answer — instead of aborting: a single bad lookup
    /// (a caller bug) must not kill a million-edge ingest that a
    /// checked caller would have survived.
    pub fn other(&self, v: VertexId) -> VertexId {
        debug_assert!(self.touches(v), "{v:?} is not an endpoint of {:?}", self.id);
        self.try_other(v).unwrap_or(self.src)
    }

    /// True if `v` is one of this edge's endpoints.
    pub fn touches(&self, v: VertexId) -> bool {
        v == self.src || v == self.dst
    }

    /// Serialize for the WAL: the 16-byte wire form every journal
    /// record and checkpoint uses (id, src, dst as `u32`; labels as
    /// `u16`; little-endian).
    pub fn wal_encode(&self, w: &mut loom_wal::ByteWriter) {
        w.u32(self.id.0);
        w.u32(self.src.0);
        w.u32(self.dst.0);
        w.u16(self.src_label.0);
        w.u16(self.dst_label.0);
    }

    /// Inverse of [`StreamEdge::wal_encode`].
    pub fn wal_decode(r: &mut loom_wal::ByteReader) -> Result<StreamEdge, loom_wal::WalError> {
        Ok(StreamEdge {
            id: EdgeId(r.u32()?),
            src: VertexId(r.u32()?),
            dst: VertexId(r.u32()?),
            src_label: Label(r.u16()?),
            dst_label: Label(r.u16()?),
        })
    }
}

/// Arrival order of a stream derived from a stored graph (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamOrder {
    /// Edges in the order the generator produced them.
    AsGenerated,
    /// Random permutation — the pseudo-adversarial case.
    Random,
    /// Breadth-first search across all connected components; an edge is
    /// emitted the first time the search touches it.
    BreadthFirst,
    /// Depth-first search across all connected components.
    DepthFirst,
}

impl StreamOrder {
    /// All orders used by the paper's evaluation (Fig. 7).
    pub const EVALUATED: [StreamOrder; 3] = [
        StreamOrder::Random,
        StreamOrder::BreadthFirst,
        StreamOrder::DepthFirst,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StreamOrder::AsGenerated => "as-generated",
            StreamOrder::Random => "random",
            StreamOrder::BreadthFirst => "breadth-first",
            StreamOrder::DepthFirst => "depth-first",
        }
    }
}

/// A fully materialised graph stream: every edge of a source graph, in
/// a chosen arrival order.
#[derive(Clone, Debug)]
pub struct GraphStream {
    edges: Vec<StreamEdge>,
    num_vertices: usize,
    num_labels: usize,
    order: StreamOrder,
}

impl GraphStream {
    /// Derive a stream from `g` in the given order. `seed` drives the
    /// random permutation and the root choices of the searches so runs
    /// are reproducible.
    pub fn from_graph(g: &LabeledGraph, order: StreamOrder, seed: u64) -> Self {
        let ids: Vec<EdgeId> = match order {
            StreamOrder::AsGenerated => g.edge_ids().collect(),
            StreamOrder::Random => {
                let mut ids: Vec<EdgeId> = g.edge_ids().collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
                ids
            }
            StreamOrder::BreadthFirst => search_order(g, true),
            StreamOrder::DepthFirst => search_order(g, false),
        };
        let edges = ids
            .into_iter()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                StreamEdge {
                    id: e,
                    src: u,
                    dst: v,
                    src_label: g.label(u),
                    dst_label: g.label(v),
                }
            })
            .collect();
        GraphStream {
            edges,
            num_vertices: g.num_vertices(),
            num_labels: g.num_labels(),
            order,
        }
    }

    /// The stream's edges in arrival order.
    #[inline]
    pub fn edges(&self) -> &[StreamEdge] {
        &self.edges
    }

    /// Number of edges in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Size of the label alphabet of the underlying graph.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The order this stream was materialised in.
    #[inline]
    pub fn order(&self) -> StreamOrder {
        self.order
    }

    /// Iterate over the stream.
    pub fn iter(&self) -> impl Iterator<Item = &StreamEdge> {
        self.edges.iter()
    }
}

/// Emit every edge exactly once in BFS (`bfs = true`) or DFS order,
/// restarting from the lowest-id unvisited vertex per component. An edge
/// is emitted when the search first processes a vertex incident to it
/// (tree and non-tree edges alike), which matches the paper's
/// "breadth-first search across all the connected components".
fn search_order(g: &LabeledGraph, bfs: bool) -> Vec<EdgeId> {
    let n = g.num_vertices();
    let mut emitted = vec![false; g.num_edges()];
    let mut visited = vec![false; n];
    let mut out = Vec::with_capacity(g.num_edges());
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    for root in 0..n {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        queue.push_back(VertexId(root as u32));
        while let Some(v) = if bfs {
            queue.pop_front()
        } else {
            queue.pop_back()
        } {
            for &(w, e) in g.neighbors(v) {
                if !emitted[e.index()] {
                    emitted[e.index()] = true;
                    out.push(e);
                }
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Label;

    fn sample_graph() -> LabeledGraph {
        // Two components: a 4-cycle with a chord and an isolated edge.
        let mut g = LabeledGraph::with_anonymous_labels(2);
        let vs: Vec<_> = (0..6)
            .map(|i| g.add_vertex(Label((i % 2) as u16)))
            .collect();
        g.add_edge(vs[0], vs[1]);
        g.add_edge(vs[1], vs[2]);
        g.add_edge(vs[2], vs[3]);
        g.add_edge(vs[3], vs[0]);
        g.add_edge(vs[0], vs[2]);
        g.add_edge(vs[4], vs[5]);
        g
    }

    fn assert_is_permutation(s: &GraphStream, g: &LabeledGraph) {
        let mut seen: Vec<_> = s.edges().iter().map(|e| e.id).collect();
        seen.sort_unstable();
        let all: Vec<_> = g.edge_ids().collect();
        assert_eq!(seen, all, "stream must contain every edge exactly once");
    }

    #[test]
    fn every_order_is_a_permutation() {
        let g = sample_graph();
        for order in [
            StreamOrder::AsGenerated,
            StreamOrder::Random,
            StreamOrder::BreadthFirst,
            StreamOrder::DepthFirst,
        ] {
            let s = GraphStream::from_graph(&g, order, 7);
            assert_is_permutation(&s, &g);
            assert_eq!(s.order(), order);
            assert_eq!(s.num_vertices(), g.num_vertices());
        }
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let g = sample_graph();
        let a = GraphStream::from_graph(&g, StreamOrder::Random, 42);
        let b = GraphStream::from_graph(&g, StreamOrder::Random, 42);
        let c = GraphStream::from_graph(&g, StreamOrder::Random, 43);
        assert_eq!(a.edges(), b.edges());
        // With 6 edges two different seeds almost surely differ; if this
        // ever flakes the graph is too small, not the code wrong.
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn bfs_emits_component_contiguously() {
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::BreadthFirst, 0);
        // The first component has 5 edges; the isolated edge must come last.
        assert_eq!(s.edges()[5].id, EdgeId(5));
    }

    #[test]
    fn bfs_prefix_is_connected() {
        // Within one component, every BFS prefix must form a connected
        // sub-graph: each emitted edge touches an already-seen vertex.
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::BreadthFirst, 0);
        let mut seen = std::collections::HashSet::new();
        for e in s.edges().iter().take(5) {
            if !seen.is_empty() {
                assert!(
                    seen.contains(&e.src) || seen.contains(&e.dst),
                    "BFS edge {:?} disconnected from prefix",
                    e.id
                );
            }
            seen.insert(e.src);
            seen.insert(e.dst);
        }
    }

    #[test]
    fn stream_edge_other_endpoint() {
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::AsGenerated, 0);
        let e = s.edges()[0];
        assert_eq!(e.other(e.src), e.dst);
        assert_eq!(e.other(e.dst), e.src);
        assert_eq!(e.try_other(e.src), Some(e.dst));
        assert_eq!(e.try_other(e.dst), Some(e.src));
        assert!(e.touches(e.src) && e.touches(e.dst));
    }

    #[test]
    fn try_other_rejects_non_endpoint() {
        // Regression: `other` used to hard-panic on a non-endpoint in
        // all builds, so one bad lookup could abort an unbounded
        // ingest. The checked form reports the bug instead.
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::AsGenerated, 0);
        let e = s.edges()[0];
        assert_eq!(e.try_other(VertexId(999)), None);
        assert!(!e.touches(VertexId(999)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not an endpoint")]
    fn other_asserts_incidence_in_debug() {
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::AsGenerated, 0);
        s.edges()[0].other(VertexId(999));
    }

    #[test]
    fn labels_are_denormalised_correctly() {
        let g = sample_graph();
        let s = GraphStream::from_graph(&g, StreamOrder::Random, 3);
        for e in s.edges() {
            assert_eq!(e.src_label, g.label(e.src));
            assert_eq!(e.dst_label, g.label(e.dst));
        }
    }
}
