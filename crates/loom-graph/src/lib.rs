//! # loom-graph
//!
//! Graph substrate for the Loom reproduction (Firth, Missier & Aiston,
//! *Loom: Query-aware Partitioning of Online Graphs*, EDBT 2018).
//!
//! This crate provides everything the partitioners, matcher and query
//! engine consume:
//!
//! - [`LabeledGraph`]: the undirected vertex-labelled data graph `G`
//!   of §1.3, with dense ids and adjacency lists;
//! - [`PatternGraph`]: the small query graphs `q`;
//! - [`GraphStream`] and [`StreamOrder`]: materialised edge streams in
//!   the three arrival orders of the evaluation (§5.1);
//! - [`EdgeSource`]: source-agnostic ingest — replayed streams, text
//!   feeds (stdin), or unbounded synthetic generators;
//! - [`generators`]: synthetic stand-ins for the five datasets of
//!   Table 1, preserving label alphabets and degree skew;
//! - [`datasets`]: named `(kind, scale)` presets used by every
//!   experiment.

#![warn(missing_docs)]

pub mod datasets;
pub mod generators;
pub mod io;
mod labeled;
mod pattern;
mod source;
mod stream;
mod types;
mod workload;

pub use datasets::{DatasetKind, Scale};
pub use labeled::LabeledGraph;
pub use pattern::PatternGraph;
pub use source::{EdgeSource, SourceExtent, StreamCursor, SyntheticEdgeSource, TextEdgeSource};
pub use stream::{GraphStream, StreamEdge, StreamOrder};
pub use types::{EdgeId, Label, PartitionId, VertexId};
pub use workload::Workload;
