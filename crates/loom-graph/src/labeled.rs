//! The labelled graph `G = (V, E, L_V, f_l)` of the paper (§1.3).
//!
//! Undirected, vertex-labelled, with dense vertex and edge identifiers.
//! This is the substrate every other crate builds on: generators produce
//! it, streams are derived from it, the query engine matches over it and
//! partitioners assign its vertices.

use crate::types::{EdgeId, Label, VertexId};
use std::collections::HashSet;

/// An undirected, vertex-labelled graph.
///
/// Vertices and edges carry dense `u32` identifiers in insertion order.
/// Parallel edges and self-loops are permitted by the representation but
/// the generators never produce them; [`LabeledGraph::add_edge_checked`]
/// refuses them for callers that want the invariant enforced.
#[derive(Clone, Debug, Default)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    edges: Vec<(VertexId, VertexId)>,
    /// Orientation-normalised endpoint pairs of every edge, for O(1)
    /// duplicate detection in [`LabeledGraph::add_edge_checked`]. The
    /// set is only ever probed by key, so hasher nondeterminism cannot
    /// leak into results.
    edge_keys: HashSet<u64>,
    label_names: Vec<String>,
}

/// Orientation-independent key of an undirected endpoint pair.
#[inline]
fn edge_key(u: VertexId, v: VertexId) -> u64 {
    let (lo, hi) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
    ((lo as u64) << 32) | hi as u64
}

impl LabeledGraph {
    /// Create an empty graph with the given label alphabet.
    pub fn new(label_names: Vec<String>) -> Self {
        LabeledGraph {
            labels: Vec::new(),
            adj: Vec::new(),
            edges: Vec::new(),
            edge_keys: HashSet::new(),
            label_names,
        }
    }

    /// Create an empty graph with `n` anonymous labels (`"l0"`, `"l1"`, ...).
    pub fn with_anonymous_labels(n: usize) -> Self {
        Self::new((0..n).map(|i| format!("l{i}")).collect())
    }

    /// Reserve capacity for `v` vertices and `e` edges.
    pub fn reserve(&mut self, v: usize, e: usize) {
        self.labels.reserve(v);
        self.adj.reserve(v);
        self.edges.reserve(e);
        self.edge_keys.reserve(e);
    }

    /// Add a vertex with the given label, returning its id.
    ///
    /// # Panics
    /// Panics if `label` is outside the graph's label alphabet.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        assert!(
            label.index() < self.label_names.len(),
            "label {label:?} outside alphabet of size {}",
            self.label_names.len()
        );
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge between `u` and `v`, returning its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u.index() < self.adj.len(), "unknown vertex {u:?}");
        assert!(v.index() < self.adj.len(), "unknown vertex {v:?}");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((u, v));
        self.edge_keys.insert(edge_key(u, v));
        self.adj[u.index()].push((v, id));
        if u != v {
            self.adj[v.index()].push((u, id));
        }
        id
    }

    /// Add an edge unless it is a self-loop or a duplicate of an existing
    /// edge. Returns the new id, or `None` if refused.
    ///
    /// Duplicate detection is an O(1)-amortised probe of the edge-key
    /// set. (It used to scan the adjacency list of the lower-degree
    /// endpoint, which made generation quadratic at hub vertices — a
    /// MusicBrainz genre hub accumulates thousands of neighbours and
    /// every rejected re-roll paid a full scan.)
    pub fn add_edge_checked(&mut self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v || self.edge_keys.contains(&edge_key(u, v)) {
            return None;
        }
        Some(self.add_edge(u, v))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Size of the label alphabet `|L_V|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.label_names.len()
    }

    /// Human-readable names of the label alphabet.
    #[inline]
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// The label of a vertex (the surjection `f_l : V -> L_V`).
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// Grow the label alphabet to at least `n` labels, naming new ones
    /// anonymously (`"l<i>"`). Streaming ingest discovers the alphabet
    /// as edges arrive rather than from a schema.
    pub fn ensure_labels(&mut self, n: usize) {
        while self.label_names.len() < n {
            self.label_names
                .push(format!("l{}", self.label_names.len()));
        }
    }

    /// Overwrite the label of an existing vertex. Streaming ingest
    /// learns labels late: a vertex first registered as a gap filler
    /// defaults to label 0 until an edge that touches it names it.
    ///
    /// # Panics
    /// Panics if `v` does not exist or `label` is outside the alphabet.
    pub fn set_label(&mut self, v: VertexId, label: Label) {
        assert!(
            label.index() < self.label_names.len(),
            "label {label:?} outside alphabet of size {}",
            self.label_names.len()
        );
        self.labels[v.index()] = label;
    }

    /// Degree of a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Neighbours of `v` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Endpoints of an edge, in insertion order.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over `(EdgeId, u, v)` triples in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u32), u, v))
    }

    /// All vertices carrying the given label.
    pub fn vertices_with_label(&self, l: Label) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.label(v) == l).collect()
    }

    /// Histogram of label usage, indexed by label.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.label_names.len()];
        for &l in &self.labels {
            h[l.index()] += 1;
        }
        h
    }

    /// Number of connected components (ignoring isolated-vertex trivia is
    /// up to the caller; isolated vertices each count as a component).
    pub fn connected_components(&self) -> usize {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            components += 1;
            seen[s] = true;
            stack.push(VertexId(s as u32));
            while let Some(v) = stack.pop() {
                for &(w, _) in self.neighbors(v) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Mean vertex degree `2|E| / |V|`.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        let mut g = LabeledGraph::with_anonymous_labels(2);
        let a = g.add_vertex(Label(0));
        let b = g.add_vertex(Label(1));
        let c = g.add_vertex(Label(0));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        g
    }

    #[test]
    fn build_and_query_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_labels(), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.label(VertexId(1)), Label(1));
        let (u, v) = g.endpoints(EdgeId(0));
        assert_eq!((u, v), (VertexId(0), VertexId(1)));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for (e, u, v) in g.edges() {
            assert!(g.neighbors(u).iter().any(|&(w, id)| w == v && id == e));
            assert!(g.neighbors(v).iter().any(|&(w, id)| w == u && id == e));
        }
    }

    #[test]
    fn checked_add_refuses_duplicates_and_loops() {
        let mut g = triangle();
        assert!(g.add_edge_checked(VertexId(0), VertexId(0)).is_none());
        assert!(g.add_edge_checked(VertexId(0), VertexId(1)).is_none());
        assert!(g.add_edge_checked(VertexId(1), VertexId(0)).is_none());
        let before = g.num_edges();
        let d = g.add_vertex(Label(0));
        assert!(g.add_edge_checked(VertexId(0), d).is_some());
        assert_eq!(g.num_edges(), before + 1);
    }

    #[test]
    fn label_histogram_counts() {
        let g = triangle();
        assert_eq!(g.label_histogram(), vec![2, 1]);
    }

    #[test]
    fn components_counts_isolated_vertices() {
        let mut g = triangle();
        g.add_vertex(Label(0));
        assert_eq!(g.connected_components(), 2);
    }

    #[test]
    fn mean_degree_triangle_is_two() {
        assert!((triangle().mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn label_outside_alphabet_panics() {
        let mut g = LabeledGraph::with_anonymous_labels(1);
        g.add_vertex(Label(5));
    }

    #[test]
    fn vertices_with_label_filters() {
        let g = triangle();
        assert_eq!(g.vertices_with_label(Label(1)), vec![VertexId(1)]);
        assert_eq!(g.vertices_with_label(Label(0)).len(), 2);
    }
}
