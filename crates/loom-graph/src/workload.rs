//! Query workloads `Q = {(q1, n1) ... (qh, nh)}` (§1.3).
//!
//! A workload is a multiset of pattern-matching queries, each with a
//! relative frequency. Loom mines motifs from it (loom-motif) and the
//! evaluation executes it to count inter-partition traversals
//! (loom-query).

use crate::pattern::PatternGraph;

/// A pattern-matching query workload: patterns with relative frequencies.
#[derive(Clone, Debug)]
pub struct Workload {
    queries: Vec<(PatternGraph, f64)>,
}

impl Workload {
    /// Build a workload from `(pattern, frequency)` pairs. Frequencies
    /// need not sum to 1; they are normalised on read.
    ///
    /// # Panics
    /// Panics if empty or if any frequency is non-positive/non-finite.
    pub fn new(queries: Vec<(PatternGraph, f64)>) -> Self {
        assert!(!queries.is_empty(), "empty workload");
        for (q, f) in &queries {
            assert!(
                f.is_finite() && *f > 0.0,
                "query {} has invalid frequency {f}",
                q.name()
            );
        }
        Workload { queries }
    }

    /// The queries with their raw frequencies.
    pub fn queries(&self) -> &[(PatternGraph, f64)] {
        &self.queries
    }

    /// Number of distinct query patterns.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Sum of raw frequencies (the normalisation denominator).
    pub fn total_frequency(&self) -> f64 {
        self.queries.iter().map(|(_, f)| f).sum()
    }

    /// Normalised frequency of the `i`-th query.
    pub fn relative_frequency(&self, i: usize) -> f64 {
        self.queries[i].1 / self.total_frequency()
    }

    /// Largest query size `|E_q|` — bounds signature sizes (§2.3).
    pub fn max_query_edges(&self) -> usize {
        self.queries
            .iter()
            .map(|(q, _)| q.num_edges())
            .max()
            .unwrap_or(0)
    }

    /// The running example of Fig. 1: `Q(q1: 30%, q2: 60%, q3: 10%)`
    /// over labels `a=0, b=1, c=2, d=3` — q1 the a-b-a-b 4-cycle, q2 the
    /// a-b-c path, q3 the a-b-c-d path. Used by tests replaying Fig. 2.
    pub fn figure1_example() -> Self {
        use crate::types::Label;
        let a = Label(0);
        let b = Label(1);
        let c = Label(2);
        let d = Label(3);
        Workload::new(vec![
            (PatternGraph::cycle("q1", vec![a, b, a, b]), 30.0),
            (PatternGraph::path("q2", vec![a, b, c]), 60.0),
            (PatternGraph::path("q3", vec![a, b, c, d]), 10.0),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Label;

    #[test]
    fn frequencies_normalise() {
        let w = Workload::figure1_example();
        assert_eq!(w.len(), 3);
        assert!((w.total_frequency() - 100.0).abs() < 1e-12);
        assert!((w.relative_frequency(0) - 0.3).abs() < 1e-12);
        assert!((w.relative_frequency(1) - 0.6).abs() < 1e-12);
        assert!((w.relative_frequency(2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_query_edges() {
        let w = Workload::figure1_example();
        assert_eq!(w.max_query_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_rejected() {
        Workload::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn zero_frequency_rejected() {
        Workload::new(vec![(
            PatternGraph::path("q", vec![Label(0), Label(1)]),
            0.0,
        )]);
    }
}
