//! ProvGen-like PROV provenance graph generator.
//!
//! Stands in for the ProvGen wiki-provenance dataset of Table 1 (0.5M
//! vertices, 0.9M edges, 3 labels). ProvGen \[6\] synthesises PROV \[21\]
//! graphs with predictable structure: wiki pages are chains of revision
//! *entities*, consecutive revisions linked by an edit *activity*, each
//! activity associated with an *agent* (the editing user).
//!
//! Labels: `Entity`, `Activity`, `Agent`.

use crate::generators::skew::{geometric_in, Zipf};
use crate::labeled::LabeledGraph;
use crate::types::VertexId;
use rand::Rng;
use rand::SeedableRng;

/// Label indices of the PROV schema.
pub mod labels {
    use crate::types::Label;
    /// A PROV entity (a page revision).
    pub const ENTITY: Label = Label(0);
    /// A PROV activity (an edit).
    pub const ACTIVITY: Label = Label(1);
    /// A PROV agent (a user).
    pub const AGENT: Label = Label(2);
}

/// Human-readable names of the schema, indexed by label.
pub fn label_names() -> Vec<String> {
    ["Entity", "Activity", "Agent"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Tuning knobs of the generator.
#[derive(Clone, Debug)]
pub struct ProvGenConfig {
    /// Number of wiki pages (revision chains).
    pub num_pages: usize,
    /// Minimum revisions per page.
    pub min_revisions: usize,
    /// Maximum revisions per page.
    pub max_revisions: usize,
    /// Probability a chain keeps growing past the minimum.
    pub revision_continue: f64,
    /// Zipf exponent for user activity (few users make most edits).
    pub user_skew: f64,
}

impl Default for ProvGenConfig {
    fn default() -> Self {
        ProvGenConfig {
            num_pages: 2_000,
            min_revisions: 2,
            max_revisions: 24,
            revision_continue: 0.72,
            user_skew: 1.0,
        }
    }
}

impl ProvGenConfig {
    /// A config targeting roughly `edges` edges.
    pub fn with_target_edges(edges: usize) -> Self {
        // With default chain parameters each page contributes ~13 edges.
        ProvGenConfig {
            num_pages: (edges as f64 / 13.0).ceil().max(4.0) as usize,
            ..Default::default()
        }
    }
}

/// Generate a ProvGen-like PROV graph. Deterministic in `(config, seed)`.
///
/// Per page with `r` revisions the structure is:
/// `entity_0 — activity_0 — entity_1 — activity_1 — ... — entity_{r-1}`
/// (each activity *used* the previous revision and *generated* the next),
/// plus one `activity — agent` association per edit and occasional
/// cross-page `entity — entity` derivations (page merges/splits) that tie
/// the components together like real wiki histories.
pub fn generate(config: &ProvGenConfig, seed: u64) -> LabeledGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_pages = config.num_pages.max(2);
    let n_users = (n_pages / 4).max(2);

    let mut g = LabeledGraph::new(label_names());
    let users: Vec<VertexId> = (0..n_users).map(|_| g.add_vertex(labels::AGENT)).collect();
    let user_zipf = Zipf::new(n_users, config.user_skew);

    // Most recent revision entity of each finished page, for cross-page
    // derivation edges.
    let mut page_heads: Vec<VertexId> = Vec::with_capacity(n_pages);

    for _ in 0..n_pages {
        let revisions = geometric_in(
            &mut rng,
            config.min_revisions,
            config.max_revisions,
            config.revision_continue,
        );
        let mut prev = g.add_vertex(labels::ENTITY);
        // Cross-page derivation: ~10% of pages start as a fork of an
        // existing page's head revision.
        if !page_heads.is_empty() && rng.gen_bool(0.1) {
            let src = page_heads[rng.gen_range(0..page_heads.len())];
            g.add_edge_checked(prev, src);
        }
        for _ in 1..revisions {
            let activity = g.add_vertex(labels::ACTIVITY);
            let next = g.add_vertex(labels::ENTITY);
            g.add_edge(activity, prev); // used
            g.add_edge(activity, next); // generated
            let agent = users[user_zipf.sample(&mut rng)];
            g.add_edge_checked(activity, agent); // wasAssociatedWith
            prev = next;
        }
        page_heads.push(prev);
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_label_schema() {
        let g = generate(&ProvGenConfig::default(), 1);
        assert_eq!(g.num_labels(), 3);
        let hist = g.label_histogram();
        assert!(hist.iter().all(|&c| c > 0));
        // Entities outnumber activities (one more entity per chain).
        assert!(hist[labels::ENTITY.index()] > hist[labels::ACTIVITY.index()]);
    }

    #[test]
    fn activities_form_chains() {
        let g = generate(
            &ProvGenConfig {
                num_pages: 200,
                ..Default::default()
            },
            2,
        );
        // Every activity touches exactly 2 entities + 1 agent (unless the
        // agent edge was a duplicate, which cannot happen: one agent edge
        // per fresh activity).
        for v in g.vertices_with_label(labels::ACTIVITY) {
            let d = g.degree(v);
            assert_eq!(d, 3, "activity degree {d}");
            let ent = g
                .neighbors(v)
                .iter()
                .filter(|&&(w, _)| g.label(w) == labels::ENTITY)
                .count();
            assert_eq!(ent, 2);
        }
    }

    #[test]
    fn ratio_matches_real_provgen() {
        let g = generate(
            &ProvGenConfig {
                num_pages: 3_000,
                ..Default::default()
            },
            3,
        );
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        // Real ProvGen: 0.9M / 0.5M = 1.8.
        assert!((1.2..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ProvGenConfig {
            num_pages: 100,
            ..Default::default()
        };
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn user_activity_is_skewed() {
        let g = generate(
            &ProvGenConfig {
                num_pages: 2_000,
                ..Default::default()
            },
            4,
        );
        let mut degrees: Vec<usize> = g
            .vertices_with_label(labels::AGENT)
            .iter()
            .map(|&v| g.degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        assert!(degrees[0] > degrees[degrees.len() / 2] * 3, "{degrees:?}");
    }

    #[test]
    fn target_edges_is_approximate() {
        let g = generate(&ProvGenConfig::with_target_edges(15_000), 6);
        let e = g.num_edges();
        assert!((7_000..30_000).contains(&e), "got {e}");
    }
}
