//! MusicBrainz-like music metadata graph generator.
//!
//! Stands in for the real MusicBrainz dataset of Table 1 (31M vertices,
//! 100M edges, 12 labels) — the paper's most *heterogeneous* real graph
//! and the one where Loom's advantage is largest (42% fewer ipt than
//! Fennel on BFS streams, §5.2). The properties that matter are the wide
//! 12-label schema and hub-heavy skew (areas, genres and labels act as
//! high-degree hubs), both reproduced here at configurable scale.
//!
//! Labels: `Artist`, `Album`, `Recording`, `Work`, `Label`, `Area`,
//! `Place`, `Event`, `Genre`, `Series`, `Instrument`, `Url`.

use crate::generators::skew::{geometric_in, Zipf};
use crate::labeled::LabeledGraph;
use crate::types::VertexId;
use rand::Rng;
use rand::SeedableRng;

/// Label indices of the MusicBrainz-like schema.
pub mod labels {
    use crate::types::Label;
    /// A performing artist or band.
    pub const ARTIST: Label = Label(0);
    /// An album (release group).
    pub const ALBUM: Label = Label(1);
    /// A recorded track.
    pub const RECORDING: Label = Label(2);
    /// A composed work.
    pub const WORK: Label = Label(3);
    /// A record label.
    pub const RECORD_LABEL: Label = Label(4);
    /// A geographic area.
    pub const AREA: Label = Label(5);
    /// A venue.
    pub const PLACE: Label = Label(6);
    /// A concert or festival.
    pub const EVENT: Label = Label(7);
    /// A musical genre.
    pub const GENRE: Label = Label(8);
    /// A release series.
    pub const SERIES: Label = Label(9);
    /// An instrument.
    pub const INSTRUMENT: Label = Label(10);
    /// An external URL resource.
    pub const URL: Label = Label(11);
}

/// Human-readable names of the schema, indexed by label.
pub fn label_names() -> Vec<String> {
    [
        "Artist",
        "Album",
        "Recording",
        "Work",
        "Label",
        "Area",
        "Place",
        "Event",
        "Genre",
        "Series",
        "Instrument",
        "Url",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Tuning knobs of the generator.
#[derive(Clone, Debug)]
pub struct MusicBrainzConfig {
    /// Number of artists; every other entity count is derived from it.
    pub num_artists: usize,
    /// Mean albums per artist.
    pub mean_albums: f64,
    /// Mean recordings per album.
    pub mean_recordings: f64,
}

impl Default for MusicBrainzConfig {
    fn default() -> Self {
        MusicBrainzConfig {
            num_artists: 1_500,
            mean_albums: 2.0,
            mean_recordings: 4.0,
        }
    }
}

impl MusicBrainzConfig {
    /// A config targeting roughly `edges` edges.
    pub fn with_target_edges(edges: usize) -> Self {
        // Each artist contributes ~24 edges under the default means.
        MusicBrainzConfig {
            num_artists: (edges as f64 / 24.0).ceil().max(4.0) as usize,
            ..Default::default()
        }
    }
}

/// Generate a MusicBrainz-like graph. Deterministic in `(config, seed)`.
pub fn generate(config: &MusicBrainzConfig, seed: u64) -> LabeledGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_artists = config.num_artists.max(4);
    let n_labels = (n_artists / 40).max(2);
    let n_areas = (n_artists / 30).clamp(2, 400);
    let n_places = (n_artists / 20).max(2);
    let n_genres = (n_artists / 50).clamp(2, 60);
    let n_series = (n_artists / 60).max(2);
    let n_instruments = 24.min(n_artists).max(2);

    let mut g = LabeledGraph::new(label_names());
    let artists: Vec<VertexId> = (0..n_artists)
        .map(|_| g.add_vertex(labels::ARTIST))
        .collect();
    let rec_labels: Vec<VertexId> = (0..n_labels)
        .map(|_| g.add_vertex(labels::RECORD_LABEL))
        .collect();
    let areas: Vec<VertexId> = (0..n_areas).map(|_| g.add_vertex(labels::AREA)).collect();
    let places: Vec<VertexId> = (0..n_places).map(|_| g.add_vertex(labels::PLACE)).collect();
    let genres: Vec<VertexId> = (0..n_genres).map(|_| g.add_vertex(labels::GENRE)).collect();
    let series: Vec<VertexId> = (0..n_series)
        .map(|_| g.add_vertex(labels::SERIES))
        .collect();
    let instruments: Vec<VertexId> = (0..n_instruments)
        .map(|_| g.add_vertex(labels::INSTRUMENT))
        .collect();

    let label_zipf = Zipf::new(n_labels, 1.1);
    let area_zipf = Zipf::new(n_areas, 1.2);
    let place_zipf = Zipf::new(n_places, 1.0);
    let genre_zipf = Zipf::new(n_genres, 1.1);
    let series_zipf = Zipf::new(n_series, 1.0);
    let instr_zipf = Zipf::new(n_instruments, 1.0);

    // Hubs: labels and places belong to areas.
    for &l in &rec_labels {
        g.add_edge_checked(l, areas[area_zipf.sample(&mut rng)]);
    }
    for &p in &places {
        g.add_edge_checked(p, areas[area_zipf.sample(&mut rng)]);
    }

    for &artist in &artists {
        // Artist facts.
        g.add_edge_checked(artist, areas[area_zipf.sample(&mut rng)]);
        g.add_edge_checked(artist, genres[genre_zipf.sample(&mut rng)]);
        if rng.gen_bool(0.5) {
            g.add_edge_checked(artist, instruments[instr_zipf.sample(&mut rng)]);
        }
        if rng.gen_bool(0.3) {
            let url = g.add_vertex(labels::URL);
            g.add_edge(artist, url);
        }
        // Occasional collaborations between artists (same-label edges
        // keep the workload from being purely bipartite).
        if rng.gen_bool(0.25) {
            let other = artists[rng.gen_range(0..n_artists)];
            g.add_edge_checked(artist, other);
        }
        // Events at places.
        if rng.gen_bool(0.4) {
            let ev = g.add_vertex(labels::EVENT);
            g.add_edge(artist, ev);
            g.add_edge(ev, places[place_zipf.sample(&mut rng)]);
        }
        // Discography.
        let n_albums = geometric_in(
            &mut rng,
            1,
            8,
            config.mean_albums / (1.0 + config.mean_albums),
        );
        for _ in 0..n_albums {
            let album = g.add_vertex(labels::ALBUM);
            g.add_edge(artist, album);
            g.add_edge_checked(album, rec_labels[label_zipf.sample(&mut rng)]);
            if rng.gen_bool(0.15) {
                g.add_edge_checked(album, series[series_zipf.sample(&mut rng)]);
            }
            let n_recs = geometric_in(
                &mut rng,
                2,
                10,
                config.mean_recordings / (1.0 + config.mean_recordings),
            );
            for _ in 0..n_recs {
                let rec = g.add_vertex(labels::RECORDING);
                g.add_edge(album, rec);
                if rng.gen_bool(0.4) {
                    let work = g.add_vertex(labels::WORK);
                    g.add_edge(rec, work);
                }
            }
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_label_schema_all_used() {
        let g = generate(&MusicBrainzConfig::default(), 1);
        assert_eq!(g.num_labels(), 12);
        let hist = g.label_histogram();
        for (i, &c) in hist.iter().enumerate() {
            assert!(c > 0, "label {} ({}) unused", i, g.label_names()[i]);
        }
    }

    #[test]
    fn areas_are_hubs() {
        let g = generate(
            &MusicBrainzConfig {
                num_artists: 2_000,
                ..Default::default()
            },
            2,
        );
        let max_area_deg = g
            .vertices_with_label(labels::AREA)
            .iter()
            .map(|&v| g.degree(v))
            .max()
            .unwrap();
        assert!(max_area_deg > 50, "hot area degree {max_area_deg}");
    }

    #[test]
    fn ratio_is_musicbrainz_like() {
        let g = generate(
            &MusicBrainzConfig {
                num_artists: 2_000,
                ..Default::default()
            },
            3,
        );
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        // Real MusicBrainz: 100M / 31M ≈ 3.2. Accept a broad band.
        assert!((1.2..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = MusicBrainzConfig {
            num_artists: 150,
            ..Default::default()
        };
        let a = generate(&cfg, 8);
        let b = generate(&cfg, 8);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn albums_connect_artists_to_recordings() {
        let g = generate(
            &MusicBrainzConfig {
                num_artists: 300,
                ..Default::default()
            },
            4,
        );
        for album in g.vertices_with_label(labels::ALBUM) {
            let has_artist = g
                .neighbors(album)
                .iter()
                .any(|&(w, _)| g.label(w) == labels::ARTIST);
            assert!(has_artist, "orphan album {album:?}");
        }
    }

    #[test]
    fn target_edges_is_approximate() {
        let g = generate(&MusicBrainzConfig::with_target_edges(30_000), 5);
        let e = g.num_edges();
        assert!((15_000..60_000).contains(&e), "got {e}");
    }
}
