//! DBLP-like bibliographic graph generator.
//!
//! Stands in for the real DBLP dataset of Table 1 (1.2M vertices, 2.5M
//! edges, 8 labels). The generator reproduces the properties Loom's
//! evaluation depends on — an 8-label schema, power-law authorship and
//! citation counts, hub venues — at a configurable scale.
//!
//! Labels: `Paper`, `Author`, `Conference`, `Journal`, `Institution`,
//! `Topic`, `Year`, `Editor`.

use crate::generators::skew::{PrefAttach, Zipf};
use crate::labeled::LabeledGraph;
use crate::types::VertexId;
use rand::Rng;
use rand::SeedableRng;

/// Label indices of the DBLP-like schema.
pub mod labels {
    use crate::types::Label;
    /// A publication.
    pub const PAPER: Label = Label(0);
    /// A person authoring papers.
    pub const AUTHOR: Label = Label(1);
    /// A conference venue.
    pub const CONFERENCE: Label = Label(2);
    /// A journal venue.
    pub const JOURNAL: Label = Label(3);
    /// An author's affiliation.
    pub const INSTITUTION: Label = Label(4);
    /// A subject topic.
    pub const TOPIC: Label = Label(5);
    /// A publication year.
    pub const YEAR: Label = Label(6);
    /// A venue editor.
    pub const EDITOR: Label = Label(7);
}

/// Human-readable names of the schema, indexed by label.
pub fn label_names() -> Vec<String> {
    [
        "Paper",
        "Author",
        "Conference",
        "Journal",
        "Institution",
        "Topic",
        "Year",
        "Editor",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Tuning knobs of the generator. `Default` matches the shape of real
/// DBLP (mean ~2 authors/paper, ~1 citation/paper retained after
/// dedup, skewed venue popularity).
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of papers; every other entity count is derived from it.
    pub num_papers: usize,
    /// Mean authors per paper (minimum 1).
    pub mean_authors_per_paper: f64,
    /// Mean citations from each paper to earlier papers.
    pub mean_citations_per_paper: f64,
    /// Zipf exponent for author productivity.
    pub author_skew: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            num_papers: 10_000,
            mean_authors_per_paper: 2.2,
            mean_citations_per_paper: 1.0,
            author_skew: 0.9,
        }
    }
}

impl DblpConfig {
    /// A config targeting roughly `edges` edges.
    pub fn with_target_edges(edges: usize) -> Self {
        // Each paper contributes ~6.2 edges under the default means.
        DblpConfig {
            num_papers: (edges as f64 / 6.2).ceil().max(8.0) as usize,
            ..Default::default()
        }
    }
}

/// Generate a DBLP-like graph. Deterministic in `(config, seed)`.
pub fn generate(config: &DblpConfig, seed: u64) -> LabeledGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_papers = config.num_papers.max(4);
    let n_authors = (n_papers as f64 * 0.8).ceil() as usize;
    let n_confs = (n_papers / 200).max(2);
    let n_journals = (n_papers / 300).max(2);
    let n_insts = (n_papers / 100).max(2);
    let n_topics = (n_papers / 80).clamp(4, 200);
    let n_years = 40.min(n_papers);
    let n_editors = (n_confs + n_journals).max(2);

    let mut g = LabeledGraph::new(label_names());
    g.reserve(
        n_papers + n_authors + n_confs + n_journals + n_insts + n_topics + n_years + n_editors,
        (n_papers as f64 * 6.5) as usize,
    );

    let papers: Vec<VertexId> = (0..n_papers).map(|_| g.add_vertex(labels::PAPER)).collect();
    let authors: Vec<VertexId> = (0..n_authors)
        .map(|_| g.add_vertex(labels::AUTHOR))
        .collect();
    let confs: Vec<VertexId> = (0..n_confs)
        .map(|_| g.add_vertex(labels::CONFERENCE))
        .collect();
    let journals: Vec<VertexId> = (0..n_journals)
        .map(|_| g.add_vertex(labels::JOURNAL))
        .collect();
    let insts: Vec<VertexId> = (0..n_insts)
        .map(|_| g.add_vertex(labels::INSTITUTION))
        .collect();
    let topics: Vec<VertexId> = (0..n_topics).map(|_| g.add_vertex(labels::TOPIC)).collect();
    let years: Vec<VertexId> = (0..n_years).map(|_| g.add_vertex(labels::YEAR)).collect();
    let editors: Vec<VertexId> = (0..n_editors)
        .map(|_| g.add_vertex(labels::EDITOR))
        .collect();

    let author_zipf = Zipf::new(n_authors, config.author_skew);
    let conf_zipf = Zipf::new(n_confs, 1.0);
    let journal_zipf = Zipf::new(n_journals, 1.0);
    let inst_zipf = Zipf::new(n_insts, 0.8);
    let topic_zipf = Zipf::new(n_topics, 1.1);
    let mut citation_pool = PrefAttach::empty();

    for (i, &paper) in papers.iter().enumerate() {
        // Authorship: 1 + Poisson-ish extra authors, Zipf over authors.
        let n_auth = 1 + sample_extra(&mut rng, config.mean_authors_per_paper - 1.0);
        for _ in 0..n_auth {
            let a = authors[author_zipf.sample(&mut rng)];
            g.add_edge_checked(paper, a);
        }
        // Venue: 70% conference, 30% journal (DBLP is conference-heavy).
        let venue = if rng.gen_bool(0.7) {
            confs[conf_zipf.sample(&mut rng)]
        } else {
            journals[journal_zipf.sample(&mut rng)]
        };
        g.add_edge_checked(paper, venue);
        // Year: later papers get later years.
        let year = years[(i * n_years) / n_papers];
        g.add_edge_checked(paper, year);
        // Topics.
        g.add_edge_checked(paper, topics[topic_zipf.sample(&mut rng)]);
        // Citations to earlier papers via preferential attachment.
        if !citation_pool.is_empty() {
            let n_cites = sample_extra(&mut rng, config.mean_citations_per_paper);
            for _ in 0..n_cites {
                let target = papers[citation_pool.sample(&mut rng) as usize];
                g.add_edge_checked(paper, target);
            }
        }
        citation_pool.register(i as u32);
    }

    // Affiliations: each author belongs to one institution.
    for &a in &authors {
        g.add_edge_checked(a, insts[inst_zipf.sample(&mut rng)]);
    }

    // Editors: each venue has 1-2 editors.
    for (i, &venue) in confs.iter().chain(journals.iter()).enumerate() {
        g.add_edge_checked(venue, editors[i % n_editors]);
        if rng.gen_bool(0.4) {
            g.add_edge_checked(venue, editors[rng.gen_range(0..n_editors)]);
        }
    }

    g
}

/// Sample a small non-negative count with the given mean, capped to keep
/// pathological draws out of the generated graphs.
fn sample_extra<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let mut n = 0usize;
    let p = mean / (1.0 + mean); // geometric with matching mean
    while n < 8 && rng.gen_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_eight_labels() {
        let g = generate(
            &DblpConfig {
                num_papers: 500,
                ..Default::default()
            },
            1,
        );
        assert_eq!(g.num_labels(), 8);
        let hist = g.label_histogram();
        for (i, &count) in hist.iter().enumerate() {
            assert!(count > 0, "label {i} unused");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = DblpConfig {
            num_papers: 300,
            ..Default::default()
        };
        let a = generate(&cfg, 9);
        let b = generate(&cfg, 9);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn edge_vertex_ratio_is_dblp_like() {
        let g = generate(
            &DblpConfig {
                num_papers: 2_000,
                ..Default::default()
            },
            2,
        );
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        // Real DBLP is ~2.1; the generator lands in [1.5, 4.0].
        assert!((1.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn venue_degrees_are_skewed() {
        let g = generate(
            &DblpConfig {
                num_papers: 3_000,
                ..Default::default()
            },
            3,
        );
        let mut conf_degrees: Vec<usize> = g
            .vertices_with_label(labels::CONFERENCE)
            .iter()
            .map(|&v| g.degree(v))
            .collect();
        conf_degrees.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            conf_degrees[0] > conf_degrees[conf_degrees.len() - 1] * 3,
            "expected hub venues: {conf_degrees:?}"
        );
    }

    #[test]
    fn target_edges_is_approximate() {
        let cfg = DblpConfig::with_target_edges(20_000);
        let g = generate(&cfg, 4);
        let e = g.num_edges();
        assert!((10_000..40_000).contains(&e), "got {e} edges");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = generate(
            &DblpConfig {
                num_papers: 400,
                ..Default::default()
            },
            5,
        );
        let mut seen = std::collections::HashSet::new();
        for (_, u, v) in g.edges() {
            assert_ne!(u, v, "self loop");
            let key = (u.min(v), u.max(v));
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
    }
}
