//! Synthetic dataset generators standing in for the evaluation datasets
//! of Table 1 (§5.1.1).
//!
//! The real DBLP and MusicBrainz dumps (and the LUBM generator output
//! used by the authors) are not shipped with this reproduction; each
//! generator here reproduces the *properties the evaluation exercises* —
//! label alphabet size (heterogeneity), degree skew, and schema-shaped
//! local structure — at configurable scale. See DESIGN.md §4 for the
//! substitution rationale.

pub mod dblp;
pub mod lubm;
pub mod musicbrainz;
pub mod provgen;
pub mod skew;
