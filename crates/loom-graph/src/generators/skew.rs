//! Skewed sampling primitives shared by the dataset generators.
//!
//! Real graph datasets (DBLP, MusicBrainz) have heavy-tailed degree
//! distributions: a few venues/labels/areas act as hubs while most
//! entities have low degree. The generators reproduce this with Zipf
//! sampling and preferential attachment, both seeded and deterministic.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (i + 1)^exponent` — i.e. index 0 is the hottest item.
///
/// Implemented with a precomputed cumulative weight table and binary
/// search, so sampling is `O(log n)` and exact (no rejection).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with the given exponent.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(exponent.is_finite(), "non-finite Zipf exponent");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the sampler covers no items (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

/// Preferential-attachment endpoint pool: items that have received edges
/// before are proportionally more likely to be drawn again ("rich get
/// richer"), seeded with one occurrence of each item so no item is
/// unreachable.
#[derive(Clone, Debug)]
pub struct PrefAttach {
    pool: Vec<u32>,
}

impl PrefAttach {
    /// Create a pool over items `0..n`, each seeded with one occurrence.
    pub fn new(n: usize) -> Self {
        PrefAttach {
            pool: (0..n as u32).collect(),
        }
    }

    /// Create an empty pool; items must be registered with
    /// [`PrefAttach::register`] before sampling.
    pub fn empty() -> Self {
        PrefAttach { pool: Vec::new() }
    }

    /// Add an item occurrence, increasing its future sampling weight.
    pub fn register(&mut self, item: u32) {
        self.pool.push(item);
    }

    /// Number of occurrences in the pool.
    pub fn weight(&self) -> usize {
        self.pool.len()
    }

    /// True when no item has been registered.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Draw one item proportionally to its occurrence count.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        assert!(!self.pool.is_empty(), "sampling from empty pool");
        self.pool[rng.gen_range(0..self.pool.len())]
    }
}

/// Draw from a truncated geometric distribution over `lo..=hi` with the
/// given continuation probability — used for chain lengths (ProvGen
/// revision histories) and group sizes.
pub fn geometric_in<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize, p_continue: f64) -> usize {
    debug_assert!(lo <= hi);
    let mut v = lo;
    while v < hi && rng.gen_bool(p_continue) {
        v += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_heavily_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Item 0 should be drawn far more often than item 50.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // Every draw must be in range (guaranteed by counts not panicking).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform_ish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish expected, got {c}");
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_zero_items_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn pref_attach_rich_get_richer() {
        let mut pa = PrefAttach::new(50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // Heavily register item 7.
        for _ in 0..500 {
            pa.register(7);
        }
        let mut hits = 0;
        for _ in 0..1_000 {
            if pa.sample(&mut rng) == 7 {
                hits += 1;
            }
        }
        // Item 7 has weight 501 of 550 total: expect ~91% hits.
        assert!(hits > 800, "expected preferential bias, got {hits}/1000");
    }

    #[test]
    fn pref_attach_all_items_reachable() {
        let pa = PrefAttach::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[pa.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn geometric_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = geometric_in(&mut rng, 2, 9, 0.6);
            assert!((2..=9).contains(&v));
        }
        // p_continue = 0 always yields lo.
        assert_eq!(geometric_in(&mut rng, 3, 10, 0.0), 3);
    }
}
