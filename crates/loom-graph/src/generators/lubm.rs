//! LUBM-like university benchmark graph generator.
//!
//! Stands in for LUBM-100 (2.6M vertices, 11M edges) and LUBM-4000
//! (131M/534M) from Table 1. LUBM (the Lehigh University Benchmark) is
//! itself a synthetic generator, so this module re-implements its shape
//! directly: universities contain departments, departments employ
//! faculty and enrol students, students take courses taught by faculty,
//! faculty and graduate students co-author publications.
//!
//! Labels (15): `University`, `Department`, `FullProfessor`,
//! `AssociateProfessor`, `AssistantProfessor`, `Lecturer`,
//! `UndergraduateStudent`, `GraduateStudent`, `Course`,
//! `GraduateCourse`, `ResearchGroup`, `Publication`,
//! `TeachingAssistant`, `ResearchAssistant`, `Chair`.

use crate::labeled::LabeledGraph;
use crate::types::VertexId;
use rand::Rng;
use rand::SeedableRng;

/// Label indices of the LUBM-like schema.
pub mod labels {
    use crate::types::Label;
    /// A university.
    pub const UNIVERSITY: Label = Label(0);
    /// A department.
    pub const DEPARTMENT: Label = Label(1);
    /// Senior faculty.
    pub const FULL_PROFESSOR: Label = Label(2);
    /// Mid-level faculty.
    pub const ASSOCIATE_PROFESSOR: Label = Label(3);
    /// Junior faculty.
    pub const ASSISTANT_PROFESSOR: Label = Label(4);
    /// Teaching staff.
    pub const LECTURER: Label = Label(5);
    /// An undergraduate student.
    pub const UNDERGRAD: Label = Label(6);
    /// A graduate student.
    pub const GRAD: Label = Label(7);
    /// An undergraduate course.
    pub const COURSE: Label = Label(8);
    /// A graduate course.
    pub const GRAD_COURSE: Label = Label(9);
    /// A research group.
    pub const RESEARCH_GROUP: Label = Label(10);
    /// A publication.
    pub const PUBLICATION: Label = Label(11);
    /// A TA appointment.
    pub const TEACHING_ASSISTANT: Label = Label(12);
    /// An RA appointment.
    pub const RESEARCH_ASSISTANT: Label = Label(13);
    /// A department chair.
    pub const CHAIR: Label = Label(14);
}

/// Human-readable names of the schema, indexed by label.
pub fn label_names() -> Vec<String> {
    [
        "University",
        "Department",
        "FullProfessor",
        "AssociateProfessor",
        "AssistantProfessor",
        "Lecturer",
        "UndergraduateStudent",
        "GraduateStudent",
        "Course",
        "GraduateCourse",
        "ResearchGroup",
        "Publication",
        "TeachingAssistant",
        "ResearchAssistant",
        "Chair",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Tuning knobs. LUBM's own defaults are large (15-25 departments of
/// hundreds of people); `per_department_scale` shrinks each department
/// proportionally so laptop-scale graphs keep LUBM's *shape*.
#[derive(Clone, Debug)]
pub struct LubmConfig {
    /// Number of universities (LUBM-N).
    pub num_universities: usize,
    /// Departments per university.
    pub departments_per_university: std::ops::Range<usize>,
    /// Multiplier in (0, 1] applied to within-department entity counts.
    pub per_department_scale: f64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            num_universities: 2,
            departments_per_university: 3..6,
            per_department_scale: 0.25,
        }
    }
}

impl LubmConfig {
    /// A config targeting roughly `edges` edges.
    pub fn with_target_edges(edges: usize) -> Self {
        // One default-scaled university contributes ~1000 edges.
        LubmConfig {
            num_universities: (edges as f64 / 1_000.0).ceil().max(1.0) as usize,
            ..Default::default()
        }
    }
}

/// Generate a LUBM-like graph. Deterministic in `(config, seed)`.
pub fn generate(config: &LubmConfig, seed: u64) -> LabeledGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let s = config.per_department_scale.clamp(0.01, 1.0);
    let scaled = |lo: usize, hi: usize, rng: &mut rand::rngs::StdRng| -> usize {
        let v = rng.gen_range(lo..=hi);
        ((v as f64 * s).round() as usize).max(1)
    };

    let mut g = LabeledGraph::new(label_names());

    for _ in 0..config.num_universities.max(1) {
        let univ = g.add_vertex(labels::UNIVERSITY);
        let n_depts = rng.gen_range(
            config.departments_per_university.start
                ..config
                    .departments_per_university
                    .end
                    .max(config.departments_per_university.start + 1),
        );
        for _ in 0..n_depts {
            let dept = g.add_vertex(labels::DEPARTMENT);
            g.add_edge(dept, univ); // subOrganizationOf

            let chair = g.add_vertex(labels::CHAIR);
            g.add_edge(chair, dept); // headOf

            // Faculty (LUBM ranges, scaled).
            let mut faculty: Vec<VertexId> = Vec::new();
            for _ in 0..scaled(7, 10, &mut rng) {
                faculty.push(g.add_vertex(labels::FULL_PROFESSOR));
            }
            for _ in 0..scaled(10, 14, &mut rng) {
                faculty.push(g.add_vertex(labels::ASSOCIATE_PROFESSOR));
            }
            for _ in 0..scaled(8, 11, &mut rng) {
                faculty.push(g.add_vertex(labels::ASSISTANT_PROFESSOR));
            }
            for _ in 0..scaled(5, 7, &mut rng) {
                faculty.push(g.add_vertex(labels::LECTURER));
            }
            for &f in &faculty {
                g.add_edge(f, dept); // worksFor
            }

            // Research groups.
            let groups: Vec<VertexId> = (0..scaled(10, 20, &mut rng))
                .map(|_| {
                    let rg = g.add_vertex(labels::RESEARCH_GROUP);
                    g.add_edge(rg, dept); // subOrganizationOf
                    rg
                })
                .collect();
            for &f in &faculty {
                g.add_edge_checked(f, groups[rng.gen_range(0..groups.len())]);
            }

            // Courses: each faculty member teaches 1-2 of each kind.
            let mut courses = Vec::new();
            let mut grad_courses = Vec::new();
            for &f in &faculty {
                for _ in 0..rng.gen_range(1..=2) {
                    let c = g.add_vertex(labels::COURSE);
                    g.add_edge(f, c); // teacherOf
                    courses.push(c);
                }
                if rng.gen_bool(0.6) {
                    let c = g.add_vertex(labels::GRAD_COURSE);
                    g.add_edge(f, c);
                    grad_courses.push(c);
                }
            }

            // Students.
            let n_undergrad = scaled(80, 120, &mut rng);
            let n_grad = scaled(30, 50, &mut rng);
            for _ in 0..n_undergrad {
                let u = g.add_vertex(labels::UNDERGRAD);
                g.add_edge(u, dept); // memberOf
                for _ in 0..rng.gen_range(2..=4) {
                    g.add_edge_checked(u, courses[rng.gen_range(0..courses.len())]);
                }
            }
            let mut grads = Vec::with_capacity(n_grad);
            for _ in 0..n_grad {
                let gr = g.add_vertex(labels::GRAD);
                g.add_edge(gr, dept); // memberOf
                let advisor = faculty[rng.gen_range(0..faculty.len())];
                g.add_edge(gr, advisor); // advisor
                if !grad_courses.is_empty() {
                    for _ in 0..rng.gen_range(1..=3) {
                        g.add_edge_checked(gr, grad_courses[rng.gen_range(0..grad_courses.len())]);
                    }
                }
                // Assistantships.
                if rng.gen_bool(0.2) {
                    let ta = g.add_vertex(labels::TEACHING_ASSISTANT);
                    g.add_edge(gr, ta);
                    g.add_edge(ta, courses[rng.gen_range(0..courses.len())]);
                } else if rng.gen_bool(0.25) {
                    let ra = g.add_vertex(labels::RESEARCH_ASSISTANT);
                    g.add_edge(gr, ra);
                    g.add_edge(ra, groups[rng.gen_range(0..groups.len())]);
                }
                grads.push(gr);
            }

            // Publications: authored by faculty, co-authored by grads.
            for &f in &faculty {
                for _ in 0..rng.gen_range(1..=3) {
                    let p = g.add_vertex(labels::PUBLICATION);
                    g.add_edge(p, f); // publicationAuthor
                    if !grads.is_empty() && rng.gen_bool(0.7) {
                        g.add_edge_checked(p, grads[rng.gen_range(0..grads.len())]);
                    }
                }
            }
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_label_schema_all_used() {
        let g = generate(&LubmConfig::default(), 1);
        assert_eq!(g.num_labels(), 15);
        let hist = g.label_histogram();
        for (i, &c) in hist.iter().enumerate() {
            assert!(c > 0, "label {} ({}) unused", i, g.label_names()[i]);
        }
    }

    #[test]
    fn graph_is_connected_per_university_and_overall_components() {
        let cfg = LubmConfig {
            num_universities: 3,
            ..Default::default()
        };
        let g = generate(&cfg, 2);
        // Universities are disjoint islands: exactly one component each.
        assert_eq!(g.connected_components(), 3);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = LubmConfig::default();
        let a = generate(&cfg, 11);
        let b = generate(&cfg, 11);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn advisor_edges_exist() {
        let g = generate(&LubmConfig::default(), 3);
        let faculty_labels = [
            labels::FULL_PROFESSOR,
            labels::ASSOCIATE_PROFESSOR,
            labels::ASSISTANT_PROFESSOR,
            labels::LECTURER,
        ];
        for gr in g.vertices_with_label(labels::GRAD) {
            let has_advisor = g
                .neighbors(gr)
                .iter()
                .any(|&(w, _)| faculty_labels.contains(&g.label(w)));
            assert!(has_advisor, "grad {gr:?} without advisor");
        }
    }

    #[test]
    fn ratio_is_lubm_like() {
        let g = generate(
            &LubmConfig {
                num_universities: 4,
                ..Default::default()
            },
            4,
        );
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        // Real LUBM-100: 11M / 2.6M ≈ 4.2. Accept a broad band.
        assert!((1.8..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn target_edges_scales_university_count() {
        let small = LubmConfig::with_target_edges(5_000);
        let large = LubmConfig::with_target_edges(50_000);
        assert!(large.num_universities > small.num_universities);
        let g = generate(&large, 5);
        let e = g.num_edges();
        assert!((20_000..110_000).contains(&e), "got {e}");
    }
}
