//! Named datasets with scale presets, mirroring Table 1.
//!
//! Every experiment in the benchmark harness addresses its input as a
//! `(DatasetKind, Scale)` pair so the paper's tables can name datasets
//! the way the paper does while tests run on miniatures of the same
//! distributions.

use crate::generators::{dblp, lubm, musicbrainz, provgen};
use crate::labeled::LabeledGraph;

/// The five evaluation datasets of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Publications & citations; 8 labels; real in the paper.
    Dblp,
    /// Wiki page provenance; 3 labels; synthetic in the paper too.
    ProvGen,
    /// Music records metadata; 12 labels; real in the paper.
    MusicBrainz,
    /// University records; 15 labels; LUBM-100.
    Lubm100,
    /// University records at 40x scale; LUBM-4000 (throughput runs only).
    Lubm4000,
}

impl DatasetKind {
    /// The four datasets whose ipt is measured in Figs. 7-9 (LUBM-4000 is
    /// excluded there, exactly as in the paper).
    pub const IPT_EVALUATED: [DatasetKind; 4] = [
        DatasetKind::Dblp,
        DatasetKind::ProvGen,
        DatasetKind::MusicBrainz,
        DatasetKind::Lubm100,
    ];

    /// All five datasets (Table 1, Table 2).
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Dblp,
        DatasetKind::ProvGen,
        DatasetKind::MusicBrainz,
        DatasetKind::Lubm100,
        DatasetKind::Lubm4000,
    ];

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dblp => "DBLP",
            DatasetKind::ProvGen => "ProvGen",
            DatasetKind::MusicBrainz => "MusicBrainz",
            DatasetKind::Lubm100 => "LUBM-100",
            DatasetKind::Lubm4000 => "LUBM-4000",
        }
    }

    /// `|L_V|` of the schema (Table 1).
    pub fn num_labels(self) -> usize {
        match self {
            DatasetKind::Dblp => 8,
            DatasetKind::ProvGen => 3,
            DatasetKind::MusicBrainz => 12,
            DatasetKind::Lubm100 | DatasetKind::Lubm4000 => 15,
        }
    }

    /// Whether the paper's original dataset was real-world data.
    pub fn paper_dataset_was_real(self) -> bool {
        matches!(self, DatasetKind::Dblp | DatasetKind::MusicBrainz)
    }
}

/// Scale presets. The paper's absolute sizes (up to 534M edges) are out
/// of scope for a laptop-budget reproduction; relative sizes between
/// datasets are preserved (LUBM-4000 is the largest at every scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1-3k edges: unit/integration tests.
    Tiny,
    /// ~10-20k edges: fast experiments.
    Small,
    /// ~40-80k edges: the default for figure regeneration.
    Medium,
    /// ~200-400k edges: throughput measurements (Table 2).
    Large,
}

impl Scale {
    /// Rough target edge count for this preset.
    pub fn target_edges(self) -> usize {
        match self {
            Scale::Tiny => 2_000,
            Scale::Small => 15_000,
            Scale::Medium => 60_000,
            Scale::Large => 250_000,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// Generate a dataset at the given scale. Deterministic in
/// `(kind, scale, seed)`.
pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> LabeledGraph {
    let edges = scale.target_edges();
    match kind {
        DatasetKind::Dblp => dblp::generate(&dblp::DblpConfig::with_target_edges(edges), seed),
        DatasetKind::ProvGen => {
            provgen::generate(&provgen::ProvGenConfig::with_target_edges(edges), seed)
        }
        DatasetKind::MusicBrainz => musicbrainz::generate(
            &musicbrainz::MusicBrainzConfig::with_target_edges(edges),
            seed,
        ),
        DatasetKind::Lubm100 => lubm::generate(&lubm::LubmConfig::with_target_edges(edges), seed),
        // LUBM-4000 is 40x LUBM-100 in the paper; keep the ratio bounded
        // at reproduction scales (4x) so Table 2 stays tractable.
        DatasetKind::Lubm4000 => {
            lubm::generate(&lubm::LubmConfig::with_target_edges(edges * 4), seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_at_tiny_scale() {
        for kind in DatasetKind::ALL {
            let g = generate(kind, Scale::Tiny, 1);
            assert!(g.num_edges() > 200, "{}: {}", kind.name(), g.num_edges());
            assert_eq!(g.num_labels(), kind.num_labels(), "{}", kind.name());
        }
    }

    #[test]
    fn scales_are_ordered() {
        let kind = DatasetKind::ProvGen;
        let tiny = generate(kind, Scale::Tiny, 1).num_edges();
        let small = generate(kind, Scale::Small, 1).num_edges();
        let medium = generate(kind, Scale::Medium, 1).num_edges();
        assert!(tiny < small && small < medium, "{tiny} {small} {medium}");
    }

    #[test]
    fn lubm4000_is_larger_than_lubm100() {
        let a = generate(DatasetKind::Lubm100, Scale::Tiny, 1).num_edges();
        let b = generate(DatasetKind::Lubm4000, Scale::Tiny, 1).num_edges();
        assert!(b > 2 * a, "{b} vs {a}");
    }

    #[test]
    fn heterogeneity_matches_table1() {
        assert_eq!(DatasetKind::Dblp.num_labels(), 8);
        assert_eq!(DatasetKind::ProvGen.num_labels(), 3);
        assert_eq!(DatasetKind::MusicBrainz.num_labels(), 12);
        assert_eq!(DatasetKind::Lubm100.num_labels(), 15);
        assert_eq!(DatasetKind::Lubm4000.num_labels(), 15);
    }

    #[test]
    fn ipt_evaluated_excludes_lubm4000() {
        assert!(!DatasetKind::IPT_EVALUATED.contains(&DatasetKind::Lubm4000));
        assert_eq!(DatasetKind::IPT_EVALUATED.len(), 4);
    }
}
