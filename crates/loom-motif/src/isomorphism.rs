//! Exact labelled-graph isomorphism for small graphs.
//!
//! The paper notes that canonical forms (McKay \[19\]) give strong
//! guarantees but are expensive, which is why Loom uses probabilistic
//! signatures. This module provides the *exact* checker anyway — as the
//! test oracle that validates the signature scheme's two claims:
//! isomorphic graphs always share a signature (no false negatives), and
//! signature collisions between non-isomorphic graphs are rare (§2.3).
//!
//! The implementation is a VF2-style backtracking search with label and
//! degree pruning; query graphs are "of the order of 10 edges" (§2.3)
//! so worst-case behaviour is irrelevant here.

use loom_graph::PatternGraph;

/// True iff `a` and `b` are isomorphic as labelled graphs: a bijection
/// of vertices preserving adjacency and labels exists (§1.3's match
/// definition applied graph-to-graph).
pub fn are_isomorphic(a: &PatternGraph, b: &PatternGraph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    // Cheap invariant: the (label, degree) multisets must agree.
    if a.label_degree_sequence() != b.label_degree_sequence() {
        return false;
    }
    let n = a.num_vertices();
    if n == 0 {
        return true;
    }
    let mut mapping = vec![usize::MAX; n]; // a-vertex -> b-vertex
    let mut used = vec![false; n];
    // Order a's vertices to keep the partial mapping connected where
    // possible (vertices adjacent to already-mapped ones first).
    let order = search_order(a);
    backtrack(a, b, &order, 0, &mut mapping, &mut used)
}

/// Vertex visit order: a BFS over `a` from the highest-degree vertex,
/// appending any vertices in other components afterwards.
fn search_order(a: &PatternGraph) -> Vec<usize> {
    let n = a.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let start = (0..n).max_by_key(|&v| a.degree(v)).unwrap_or(0);
    let mut queue = std::collections::VecDeque::new();
    for root in std::iter::once(start).chain(0..n) {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(w, _) in a.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

fn backtrack(
    a: &PatternGraph,
    b: &PatternGraph,
    order: &[usize],
    depth: usize,
    mapping: &mut [usize],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let va = order[depth];
    'candidates: for vb in 0..b.num_vertices() {
        if used[vb] || b.label(vb) != a.label(va) || b.degree(vb) != a.degree(va) {
            continue;
        }
        // Consistency: every already-mapped neighbour of va must map to a
        // neighbour of vb, and va must not be adjacent to the image of a
        // non-neighbour. Since both graphs have equal edge counts and we
        // check adjacency both ways, matching all neighbours suffices.
        for &(wa, _) in a.neighbors(va) {
            let wb = mapping[wa];
            if wb != usize::MAX && !b.neighbors(vb).iter().any(|&(x, _)| x == wb) {
                continue 'candidates;
            }
        }
        for &(xb, _) in b.neighbors(vb) {
            // Reverse direction: mapped b-neighbours must come from
            // a-neighbours of va.
            if let Some(xa) = mapping.iter().position(|&m| m == xb) {
                if !a.neighbors(va).iter().any(|&(w, _)| w == xa) {
                    continue 'candidates;
                }
            }
        }
        mapping[va] = vb;
        used[vb] = true;
        if backtrack(a, b, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[va] = usize::MAX;
        used[vb] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    const A: Label = Label(0);
    const B: Label = Label(1);
    const C: Label = Label(2);

    #[test]
    fn reversed_path_is_isomorphic() {
        let p1 = PatternGraph::path("p1", vec![A, B, C]);
        let p2 = PatternGraph::path("p2", vec![C, B, A]);
        assert!(are_isomorphic(&p1, &p2));
    }

    #[test]
    fn different_labels_not_isomorphic() {
        let p1 = PatternGraph::path("p1", vec![A, B, A]);
        let p2 = PatternGraph::path("p2", vec![A, B, C]);
        assert!(!are_isomorphic(&p1, &p2));
    }

    #[test]
    fn cycle_vs_path_same_degrees_differ() {
        // 4-cycle abab vs 4-path ababa: different sizes, trivially not iso.
        let cycle = PatternGraph::cycle("c", vec![A, B, A, B]);
        let path = PatternGraph::path("p", vec![A, B, A, B, A]);
        assert!(!are_isomorphic(&cycle, &path));
    }

    #[test]
    fn star_permutation_is_isomorphic() {
        let s1 = PatternGraph::star("s1", A, vec![B, C, B]);
        let s2 = PatternGraph::star("s2", A, vec![B, B, C]);
        assert!(are_isomorphic(&s1, &s2));
    }

    #[test]
    fn star_vs_path_not_isomorphic() {
        // Same label multiset {A, B, B, B}, same edge count, different shape.
        let s = PatternGraph::star("s", A, vec![B, B, B]);
        let p = PatternGraph::new("p", vec![B, B, A, B], vec![(0, 2), (1, 2), (2, 3)]);
        // p is also a star centered at A — build a genuine path instead.
        assert!(are_isomorphic(&s, &p), "both are A-centred stars");
        let path = PatternGraph::path("path", vec![B, A, B, B]);
        assert!(!are_isomorphic(&s, &path));
    }

    #[test]
    fn triangle_with_pendant_automorphisms() {
        // a-b-c triangle with a pendant b off vertex a; relabelled copy.
        let g1 = PatternGraph::new("g1", vec![A, B, C, B], vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        let g2 = PatternGraph::new("g2", vec![B, C, A, B], vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert!(are_isomorphic(&g1, &g2));
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        let g1 = PatternGraph::new("g1", vec![], vec![]);
        let g2 = PatternGraph::new("g2", vec![], vec![]);
        assert!(are_isomorphic(&g1, &g2));
    }

    #[test]
    fn single_vertices_respect_labels() {
        let g1 = PatternGraph::new("g1", vec![A], vec![]);
        let g2 = PatternGraph::new("g2", vec![A], vec![]);
        let g3 = PatternGraph::new("g3", vec![B], vec![]);
        assert!(are_isomorphic(&g1, &g2));
        assert!(!are_isomorphic(&g1, &g3));
    }
}
