//! Factor-collision probability model (§2.3, Fig. 4).
//!
//! Each of a signature's `3|E|` factors is a uniform random variable
//! over `[1, p)`; any given factor collides with probability `2/p`
//! (two collision scenarios per §2.3). Collisions across factors are
//! independent, so the number of collisions is
//! `Binomial(3|E|, 2/p)`; Fig. 4 plots the probability that at most
//! `C%` of a signature's factors collide, for query sizes of 8/12/16
//! edges (24/36/48 factors) and tolerances 5/10/20%.
//!
//! Alongside the analytic model this module provides an *empirical*
//! collision measurement: the rate at which random non-isomorphic
//! pattern pairs receive equal factor-multiset signatures, with the
//! exact checker of [`crate::isomorphism`] as ground truth. The bench
//! harness uses both to regenerate Fig. 4 and to validate the paper's
//! `p = 251` choice.

use crate::isomorphism::are_isomorphic;
use crate::signature::{pattern_signature, LabelRandomizer};
use loom_graph::{Label, PatternGraph};
use rand::Rng;
use rand::SeedableRng;

/// P(X <= k) for X ~ Binomial(n, q), computed by iterating the pmf
/// recurrence — exact enough for the n <= a few hundred of Fig. 4.
pub fn binomial_cdf(n: usize, q: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "probability out of range");
    if q == 0.0 {
        return 1.0;
    }
    if q == 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    // pmf(0) = (1-q)^n, pmf(i+1) = pmf(i) * (n-i)/(i+1) * q/(1-q)
    let mut pmf = (1.0 - q).powi(n as i32);
    let mut cdf = pmf;
    let ratio = q / (1.0 - q);
    for i in 0..k.min(n) {
        pmf *= (n - i) as f64 / (i + 1) as f64 * ratio;
        cdf += pmf;
    }
    cdf.min(1.0)
}

/// Fig. 4's y-axis: the probability that no more than `tolerance`
/// (e.g. 0.05) of a signature's factors collide, for a signature of
/// `num_factors` factors under prime `p`.
///
/// `Cmax = tolerance * num_factors` acceptable collisions, each factor
/// colliding with probability `2/p`.
pub fn acceptance_probability(num_factors: usize, p: u64, tolerance: f64) -> f64 {
    assert!(p >= 2, "prime too small");
    let c_max = (tolerance * num_factors as f64).floor() as usize;
    binomial_cdf(num_factors, 2.0 / p as f64, c_max)
}

/// One point series of Fig. 4: acceptance probability for every prime
/// (or odd candidate) `p` in `[2, p_max]`.
pub fn acceptance_series(num_factors: usize, p_max: u64, tolerance: f64) -> Vec<(u64, f64)> {
    (2..=p_max)
        .map(|p| (p, acceptance_probability(num_factors, p, tolerance)))
        .collect()
}

/// Result of an empirical signature-collision trial.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollisionStats {
    /// Pairs of random patterns compared.
    pub pairs: usize,
    /// Pairs that were genuinely isomorphic (signatures must agree —
    /// any disagreement would falsify the scheme).
    pub isomorphic: usize,
    /// Non-isomorphic pairs with colliding signatures (false positives).
    pub false_positives: usize,
    /// Isomorphic pairs whose signatures differed (must stay 0).
    pub false_negatives: usize,
}

impl CollisionStats {
    /// Empirical false-positive rate among non-isomorphic pairs.
    pub fn false_positive_rate(&self) -> f64 {
        let non_iso = self.pairs - self.isomorphic;
        if non_iso == 0 {
            0.0
        } else {
            self.false_positives as f64 / non_iso as f64
        }
    }
}

/// Compare signatures of random connected pattern pairs against exact
/// isomorphism. Patterns have `num_edges` edges over `num_labels`
/// labels; factors are drawn under prime `p`.
pub fn measure_collisions(
    pairs: usize,
    num_edges: usize,
    num_labels: usize,
    p: u64,
    seed: u64,
) -> CollisionStats {
    let rand = LabelRandomizer::new(num_labels, p, seed ^ 0x5eed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut stats = CollisionStats::default();
    for i in 0..pairs {
        let a = random_connected_pattern(&mut rng, num_edges, num_labels, i);
        let b = random_connected_pattern(&mut rng, num_edges, num_labels, i);
        let sig_eq = pattern_signature(&a, &rand) == pattern_signature(&b, &rand);
        let iso = are_isomorphic(&a, &b);
        stats.pairs += 1;
        if iso {
            stats.isomorphic += 1;
            if !sig_eq {
                stats.false_negatives += 1;
            }
        } else if sig_eq {
            stats.false_positives += 1;
        }
    }
    stats
}

/// A random connected pattern built edge-by-edge: each new edge either
/// extends a random existing vertex to a fresh vertex (tree growth) or
/// closes a cycle between existing vertices.
pub fn random_connected_pattern<R: Rng + ?Sized>(
    rng: &mut R,
    num_edges: usize,
    num_labels: usize,
    tag: usize,
) -> PatternGraph {
    let mut labels: Vec<Label> = vec![Label(rng.gen_range(0..num_labels) as u16)];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let u = rng.gen_range(0..labels.len());
        // 70% grow a new vertex, 30% close a cycle (if possible).
        if labels.len() >= 2 && rng.gen_bool(0.3) {
            let v = rng.gen_range(0..labels.len());
            if v != u && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
            continue;
        }
        let v = labels.len();
        labels.push(Label(rng.gen_range(0..num_labels) as u16));
        edges.push((u, v));
    }
    PatternGraph::new(format!("rand-{tag}"), labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_cdf_edge_cases() {
        assert!((binomial_cdf(10, 0.0, 0) - 1.0).abs() < 1e-12);
        assert!((binomial_cdf(10, 0.5, 10) - 1.0).abs() < 1e-12);
        assert!(binomial_cdf(10, 1.0, 9) < 1e-12);
        // P(X <= 0) for Binomial(4, 0.5) = 1/16.
        assert!((binomial_cdf(4, 0.5, 0) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn binomial_cdf_monotone_in_k() {
        let mut prev = 0.0;
        for k in 0..=20 {
            let c = binomial_cdf(20, 0.3, k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn acceptance_grows_with_p() {
        // Fig. 4's qualitative shape: larger primes -> higher acceptance.
        let small = acceptance_probability(36, 10, 0.05);
        let large = acceptance_probability(36, 251, 0.05);
        assert!(large > small, "{large} <= {small}");
    }

    #[test]
    fn paper_choice_of_251_is_negligible_collision() {
        // §2.3: "a p value of 251 ... gives a negligible probability of
        // significant factor collisions" — read: acceptance near 1 even
        // at the tightest tolerance and largest query size.
        let acc = acceptance_probability(48, 251, 0.05);
        assert!(acc > 0.93, "acceptance {acc}");
    }

    #[test]
    fn acceptance_falls_with_more_factors_at_small_p() {
        // With a small field, bigger signatures collide more.
        let f24 = acceptance_probability(24, 31, 0.05);
        let f48 = acceptance_probability(48, 31, 0.05);
        assert!(f48 <= f24 + 1e-12, "{f48} > {f24}");
    }

    #[test]
    fn series_covers_requested_range() {
        let s = acceptance_series(24, 317, 0.1);
        assert_eq!(s.len(), 316);
        assert_eq!(s[0].0, 2);
        assert_eq!(s.last().unwrap().0, 317);
    }

    #[test]
    fn no_false_negatives_ever() {
        // The load-bearing guarantee of §2.3: isomorphic graphs always
        // share a signature.
        let stats = measure_collisions(400, 5, 3, 251, 99);
        assert_eq!(stats.false_negatives, 0);
        assert_eq!(stats.pairs, 400);
    }

    #[test]
    fn false_positive_rate_small_at_p251() {
        let stats = measure_collisions(500, 6, 4, 251, 7);
        assert!(
            stats.false_positive_rate() < 0.05,
            "rate {}",
            stats.false_positive_rate()
        );
    }

    #[test]
    fn tiny_prime_collides_more() {
        // Sanity on the trade-off direction: p = 3 must produce
        // strictly more false positives than p = 251 on the same trial.
        let small_p = measure_collisions(400, 6, 4, 3, 21);
        let big_p = measure_collisions(400, 6, 4, 251, 21);
        assert!(
            small_p.false_positives > big_p.false_positives,
            "{} <= {}",
            small_p.false_positives,
            big_p.false_positives
        );
    }

    #[test]
    fn random_pattern_is_connected_with_requested_edges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for i in 0..50 {
            let p = random_connected_pattern(&mut rng, 8, 4, i);
            assert_eq!(p.num_edges(), 8);
            assert!(p.is_connected());
        }
    }
}
