//! # loom-motif
//!
//! Motif discovery for the Loom reproduction: number-theoretic graph
//! signatures (§2.1/§2.3), the TPSTry++ trie over query sub-graphs
//! (§2.2, Alg. 1), motif extraction at a support threshold, the
//! collision-probability model behind Fig. 4, and an exact isomorphism
//! oracle used to validate the probabilistic scheme.
//!
//! The flow: build a [`TpsTrie`] from a [`loom_graph::Workload`] with a
//! shared [`LabelRandomizer`], filter it to a [`MotifIndex`] at the
//! support threshold `T` (40% in the evaluation), and hand the index to
//! the streaming matcher (`loom-matcher`), which follows parent→child
//! [`Delta`] annotations instead of ever recomputing a signature from
//! scratch.

#![warn(missing_docs)]

pub mod collision;
pub mod isomorphism;
pub mod signature;
pub mod subgraph_enum;
pub mod tpstry;

pub use signature::{
    edge_delta, pattern_signature, single_edge_delta, subset_signature, Delta, FactorSet,
    LabelRandomizer, DEFAULT_PRIME,
};
pub use tpstry::{DeltaId, DeltaLut, Motif, MotifId, MotifIndex, TpsTrie, TrieNode, TrieNodeId};
