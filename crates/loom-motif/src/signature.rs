//! Number-theoretic graph signatures (§2.1, §2.3).
//!
//! A graph's signature is built from *factors*: one per edge and one per
//! unit of vertex degree, all values in the finite field `[1, p]` for a
//! small prime `p`. Song et al. \[29\] multiply the factors into one large
//! integer; Loom instead keeps the **multiset of factors** (§2.3), which
//! removes the "two distinct factor sets with the same product"
//! collision class and — crucially for the streaming matcher — makes the
//! signature of `g + e` the signature of `g` plus exactly three new
//! factors (one edge factor, one degree factor per endpoint).
//!
//! Guarantees: isomorphic graphs *always* have equal signatures (factors
//! depend only on labels and degrees, which isomorphism preserves); the
//! converse holds only probabilistically, with collision probability
//! governed by `p` (see [`crate::collision`] and Fig. 4).

use loom_graph::{Label, PatternGraph};
use rand::Rng;
use rand::SeedableRng;

/// The prime used by Loom's evaluation (§2.3: "we use a p value of 251").
pub const DEFAULT_PRIME: u64 = 251;

/// Per-label random values `r(l) ∈ [1, p)` shared by every signature
/// computation in a run (§2.1: "Initially we assign a random value ...
/// to each possible label from our data graph").
#[derive(Clone, Debug)]
pub struct LabelRandomizer {
    p: u64,
    r: Vec<u64>,
}

impl LabelRandomizer {
    /// Draw `r(l)` for each of `num_labels` labels. Deterministic in
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `p < 2` (no valid `r` values would exist).
    pub fn new(num_labels: usize, p: u64, seed: u64) -> Self {
        assert!(p >= 2, "prime must be at least 2");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = (0..num_labels).map(|_| rng.gen_range(1..p)).collect();
        LabelRandomizer { p, r }
    }

    /// The exact `r` values from the paper's worked example (§2.1):
    /// `p = 11`, `r(a) = 3`, `r(b) = 10`; remaining labels get
    /// deterministic filler. Used by tests that replay the example.
    pub fn paper_example(num_labels: usize) -> Self {
        let mut r = vec![3, 10, 5, 7];
        r.truncate(num_labels.max(2));
        while r.len() < num_labels {
            r.push(1 + (r.len() as u64 * 3) % 10);
        }
        LabelRandomizer { p: 11, r }
    }

    /// The finite-field prime `p`.
    #[inline]
    pub fn prime(&self) -> u64 {
        self.p
    }

    /// Number of labels covered.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.r.len()
    }

    /// The random value `r(l)`.
    ///
    /// # Panics
    /// Panics if the label is outside the alphabet.
    #[inline]
    pub fn r(&self, l: Label) -> u64 {
        self.r[l.index()]
    }

    /// Map a residue into the valid factor range: the paper's footnote 3
    /// — `0` is not a valid factor and is replaced by `p`.
    #[inline]
    fn nonzero(&self, x: u64) -> u32 {
        let m = x % self.p;
        (if m == 0 { self.p } else { m }) as u32
    }

    /// Edge factor `(r(f_l(v_i)) - r(f_l(v_j))) mod p` for an undirected
    /// edge. The subtraction order must merely be *consistent* (§2.1);
    /// we order by label index (the "lexicographical" suggestion).
    #[inline]
    pub fn edge_factor(&self, a: Label, b: Label) -> u32 {
        // Subtract the lexicographically-smaller label's value from the
        // larger's: this reproduces the paper's worked example, where the
        // a-b factor under p = 11, r(a) = 3, r(b) = 10 comes out as 7.
        let (hi, lo) = if a.index() <= b.index() {
            (self.r(b), self.r(a))
        } else {
            (self.r(a), self.r(b))
        };
        // `lo` is an r value, already `< p`, so `hi + p - lo` stays
        // non-negative and `nonzero` reduces it into the field. (An
        // earlier revision wrote `hi + self.p - lo % self.p`, which
        // parses as `hi + p - (lo % p)` — the same value only because
        // r values are pre-reduced; see the pinned precedence test.)
        self.nonzero(hi + self.p - lo)
    }

    /// Directed-edge factor: source minus target (§2.1's inline note on
    /// directed graphs). Provided for the directed extension; the rest
    /// of the reproduction is undirected.
    #[inline]
    pub fn directed_edge_factor(&self, src: Label, dst: Label) -> u32 {
        // As in `edge_factor`: r values are `< p`, subtract directly.
        self.nonzero(self.r(src) + self.p - self.r(dst))
    }

    /// The *incremental* degree factor `((r(l) + n) mod p)` contributed
    /// when a vertex labelled `l` reaches degree `n`. The full degree
    /// factor of §2.1 for degree `n` is the product over `1..=n` of
    /// these; keeping them separate is what makes signatures composable.
    #[inline]
    pub fn degree_factor(&self, l: Label, degree: usize) -> u32 {
        debug_assert!(degree >= 1, "degree factors start at degree 1");
        self.nonzero(self.r(l) + degree as u64)
    }
}

/// Mix one factor into the 64-bit multiset fingerprint domain
/// (SplitMix64's finalizer — consecutive small integers land far
/// apart, so wrapping *sums* of mixed factors rarely collide).
#[inline]
fn mix_factor(f: u32) -> u64 {
    let mut z = (f as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A signature: the sorted multiset of factors of a graph, maintained
/// incrementally.
///
/// Two representations ride together: the running **sorted factor
/// vector** (the ground truth — equality, ordering and multiset
/// difference are defined on it) and a commutative 64-bit **multiset
/// fingerprint** (the wrapping sum of per-factor mixes). The
/// fingerprint makes hashing O(1) instead of O(n) and lets equality
/// reject mismatches without touching the vectors, which is what keeps
/// the trie's signature interning cheap as queries grow. Adding
/// factors *adds* to the fingerprint; removing *subtracts* — so
/// [`FactorSet::with_delta`] and [`FactorSet::difference`] never
/// recompute it from scratch.
///
/// Factors fit `u32` (they live in `[1, p]`, and Fig. 4's sweep tops
/// out at `p = 317`).
#[derive(Clone, Debug, Default)]
pub struct FactorSet {
    factors: Vec<u32>,
    fp: u64,
}

impl PartialEq for FactorSet {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Fingerprint + length reject almost all mismatches in O(1);
        // the vector comparison confirms (fp is a hash, not an id).
        self.fp == other.fp && self.factors == other.factors
    }
}

impl Eq for FactorSet {}

impl std::hash::Hash for FactorSet {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Equal multisets always have equal (len, fp), so hashing only
        // the summary is consistent with `Eq` — and O(1).
        self.factors.len().hash(state);
        self.fp.hash(state);
    }
}

impl PartialOrd for FactorSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FactorSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order on the sorted factor vectors only: the fingerprint is
        // derived data and must not influence observable orderings.
        self.factors.cmp(&other.factors)
    }
}

impl FactorSet {
    /// The empty signature (of the empty graph — the TPSTry++ root).
    pub fn empty() -> Self {
        FactorSet::default()
    }

    /// Build from an arbitrary factor list.
    pub fn from_factors(mut factors: Vec<u32>) -> Self {
        factors.sort_unstable();
        let fp = factors
            .iter()
            .fold(0u64, |acc, &f| acc.wrapping_add(mix_factor(f)));
        FactorSet { factors, fp }
    }

    /// Number of factors (`3|E|` for a well-formed graph signature, by
    /// the Handshaking lemma argument of §2.3).
    #[inline]
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True for the empty-graph signature.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The sorted factors.
    #[inline]
    pub fn factors(&self) -> &[u32] {
        &self.factors
    }

    /// The 64-bit multiset fingerprint: a commutative summary equal
    /// multisets always share. Collisions are possible (it is a hash);
    /// nothing observable may depend on it alone.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Insert a single factor, keeping the multiset sorted and the
    /// fingerprint in sync.
    pub fn insert(&mut self, f: u32) {
        let pos = self.factors.partition_point(|&x| x <= f);
        self.factors.insert(pos, f);
        self.fp = self.fp.wrapping_add(mix_factor(f));
    }

    /// The signature of `self + delta` (adding one edge's three
    /// factors): a single merge pass of the two sorted runs into one
    /// freshly-allocated vector — no clone-then-repeated-binary-insert,
    /// and the fingerprint is extended incrementally.
    pub fn with_delta(&self, delta: &Delta) -> FactorSet {
        let d = delta.factors(); // sorted by construction
        let mut out = Vec::with_capacity(self.factors.len() + d.len());
        let mut i = 0;
        for &f in &self.factors {
            while i < d.len() && d[i] < f {
                out.push(d[i]);
                i += 1;
            }
            out.push(f);
        }
        out.extend_from_slice(&d[i..]);
        let fp = d
            .iter()
            .fold(self.fp, |acc, &f| acc.wrapping_add(mix_factor(f)));
        FactorSet { factors: out, fp }
    }

    /// Multiset difference `self \ other`, or `None` if `other` is not a
    /// sub-multiset. This is the `c.signatures \ n.signatures` operation
    /// of Alg. 2's match check. The result's fingerprint is the
    /// *subtraction* of the operands' — never recomputed.
    pub fn difference(&self, other: &FactorSet) -> Option<FactorSet> {
        if other.len() > self.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.len() - other.len());
        let mut i = 0;
        for &f in &self.factors {
            if i < other.factors.len() && other.factors[i] == f {
                i += 1;
            } else {
                out.push(f);
            }
        }
        if i == other.factors.len() {
            Some(FactorSet {
                factors: out,
                fp: self.fp.wrapping_sub(other.fp),
            })
        } else {
            None
        }
    }

    /// The product of the factors, wrapping in `u128` — the *original*
    /// Song-et-al-style signature, kept for the collision ablation bench
    /// (product signatures collide strictly more often than factor
    /// multisets).
    pub fn product_u128(&self) -> u128 {
        self.factors
            .iter()
            .fold(1u128, |acc, &f| acc.wrapping_mul(f as u128))
    }
}

/// The three factors contributed by adding one edge to a graph: the edge
/// factor plus one degree factor per endpoint (at each endpoint's *new*
/// degree). Stored sorted so deltas compare structurally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Delta([u32; 3]);

impl Delta {
    /// Build a delta from its three factors (any order).
    pub fn new(edge: u32, deg_a: u32, deg_b: u32) -> Self {
        let mut f = [edge, deg_a, deg_b];
        f.sort_unstable();
        Delta(f)
    }

    /// The sorted factors.
    #[inline]
    pub fn factors(&self) -> &[u32; 3] {
        &self.0
    }

    /// The delta as a 3-factor [`FactorSet`] (a single-edge graph's
    /// full signature).
    pub fn to_factor_set(self) -> FactorSet {
        FactorSet::from_factors(self.0.to_vec())
    }
}

/// Delta for adding an edge between vertices labelled `la`/`lb` whose
/// *resulting* degrees are `da`/`db`.
pub fn edge_delta(rand: &LabelRandomizer, la: Label, da: usize, lb: Label, db: usize) -> Delta {
    Delta::new(
        rand.edge_factor(la, lb),
        rand.degree_factor(la, da),
        rand.degree_factor(lb, db),
    )
}

/// Delta for a fresh single edge (both endpoints at degree 1) — what the
/// matcher computes for every arriving stream edge.
pub fn single_edge_delta(rand: &LabelRandomizer, la: Label, lb: Label) -> Delta {
    edge_delta(rand, la, 1, lb, 1)
}

/// Full signature of a pattern graph, computed from scratch: one edge
/// factor per edge, degree factors `1..=deg(v)` per vertex.
pub fn pattern_signature(p: &PatternGraph, rand: &LabelRandomizer) -> FactorSet {
    let mut factors = Vec::with_capacity(3 * p.num_edges());
    for &(u, v) in p.edge_list() {
        factors.push(rand.edge_factor(p.label(u), p.label(v)));
    }
    for v in 0..p.num_vertices() {
        for d in 1..=p.degree(v) {
            factors.push(rand.degree_factor(p.label(v), d));
        }
    }
    FactorSet::from_factors(factors)
}

/// Signature of the sub-pattern induced by an edge subset (bitmask over
/// `p.edge_list()` indices). Vertices outside the subset contribute
/// nothing; degrees are counted within the subset.
pub fn subset_signature(p: &PatternGraph, mask: u64, rand: &LabelRandomizer) -> FactorSet {
    let mut degree = vec![0usize; p.num_vertices()];
    let mut factors = Vec::new();
    for (i, &(u, v)) in p.edge_list().iter().enumerate() {
        if mask & (1 << i) != 0 {
            factors.push(rand.edge_factor(p.label(u), p.label(v)));
            degree[u] += 1;
            degree[v] += 1;
        }
    }
    for (v, &deg) in degree.iter().enumerate() {
        for d in 1..=deg {
            factors.push(rand.degree_factor(p.label(v), d));
        }
    }
    FactorSet::from_factors(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    const A: Label = Label(0);
    const B: Label = Label(1);
    const C: Label = Label(2);

    /// §2.1 worked example: p = 11, r(a) = 3, r(b) = 10.
    #[test]
    fn paper_example_edge_factor() {
        let rand = LabelRandomizer::paper_example(2);
        // edgeFac((a,b)) = (3 - 10) mod 11 = 7 (paper computes exactly 7).
        assert_eq!(rand.edge_factor(A, B), 7);
        // Consistency: order of arguments must not matter.
        assert_eq!(rand.edge_factor(B, A), 7);
    }

    #[test]
    fn paper_example_degree_factors() {
        let rand = LabelRandomizer::paper_example(2);
        // degFac(b) at degree 2 = ((10+1) mod 11) · ((10+2) mod 11) = 11 · 1.
        // Our incremental factors: (10+1) mod 11 = 0 -> replaced by p = 11,
        // (10+2) mod 11 = 1.
        assert_eq!(rand.degree_factor(B, 1), 11);
        assert_eq!(rand.degree_factor(B, 2), 1);
        // degFac(a) at degree 2 = ((3+1) mod 11) · ((3+2) mod 11) = 4 · 5 = 20.
        assert_eq!(rand.degree_factor(A, 1), 4);
        assert_eq!(rand.degree_factor(A, 2), 5);
    }

    /// Replays the full §2.1 computation of sig(q1) = 116_208_400 for the
    /// a-b-a-b 4-cycle, via the product of our factor multiset.
    #[test]
    fn paper_example_q1_signature_product() {
        let rand = LabelRandomizer::paper_example(2);
        let q1 = PatternGraph::cycle("q1", vec![A, B, A, B]);
        let sig = pattern_signature(&q1, &rand);
        // 4 edges + total degree 8 = 12 factors.
        assert_eq!(sig.len(), 12);
        assert_eq!(sig.product_u128(), 116_208_400u128);
    }

    /// §2.2 worked example: single a-b edge has signature
    /// 7 · ((3+1) mod 11) · ((10+1) mod 11) = 7 · 4 · 11 = 308.
    #[test]
    fn paper_example_single_edge() {
        let rand = LabelRandomizer::paper_example(2);
        let d = single_edge_delta(&rand, A, B);
        assert_eq!(d.to_factor_set().product_u128(), 308);
    }

    #[test]
    fn isomorphic_paths_have_equal_signatures() {
        // a-b-c and c-b-a are the same graph read in opposite directions.
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 7);
        let p1 = PatternGraph::path("p1", vec![A, B, C]);
        let p2 = PatternGraph::path("p2", vec![C, B, A]);
        assert_eq!(pattern_signature(&p1, &rand), pattern_signature(&p2, &rand));
    }

    #[test]
    fn different_labels_usually_differ() {
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 7);
        let p1 = PatternGraph::path("p1", vec![A, B, A]);
        let p2 = PatternGraph::path("p2", vec![A, B, C]);
        assert_ne!(pattern_signature(&p1, &rand), pattern_signature(&p2, &rand));
    }

    #[test]
    fn factor_set_insert_keeps_sorted() {
        let mut s = FactorSet::empty();
        for f in [9, 1, 5, 5, 2] {
            s.insert(f);
        }
        assert_eq!(s.factors(), &[1, 2, 5, 5, 9]);
    }

    #[test]
    fn factor_set_difference() {
        let a = FactorSet::from_factors(vec![1, 2, 2, 5, 9]);
        let b = FactorSet::from_factors(vec![2, 5]);
        assert_eq!(
            a.difference(&b).unwrap().factors(),
            &[1, 2, 9],
            "multiset difference removes one occurrence per factor"
        );
        let c = FactorSet::from_factors(vec![2, 2, 2]);
        assert!(a.difference(&c).is_none(), "not a sub-multiset");
    }

    #[test]
    fn with_delta_matches_from_scratch() {
        // Incrementally building a-b-c must equal computing it directly.
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 3);
        let ab = single_edge_delta(&rand, A, B).to_factor_set();
        // Adding b-c: edge factor + c at degree 1 + b now at degree 2.
        let delta = edge_delta(&rand, B, 2, C, 1);
        let abc_inc = ab.with_delta(&delta);
        let abc = pattern_signature(&PatternGraph::path("q", vec![A, B, C]), &rand);
        assert_eq!(abc_inc, abc);
    }

    #[test]
    fn subset_signature_full_mask_equals_pattern_signature() {
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 5);
        let p = PatternGraph::cycle("c", vec![A, B, C]);
        let full = (1u64 << p.num_edges()) - 1;
        assert_eq!(
            subset_signature(&p, full, &rand),
            pattern_signature(&p, &rand)
        );
        assert_eq!(subset_signature(&p, 0, &rand), FactorSet::empty());
    }

    #[test]
    fn factors_are_in_field_range() {
        let rand = LabelRandomizer::new(5, DEFAULT_PRIME, 11);
        for la in 0..5u16 {
            for lb in 0..5u16 {
                let f = rand.edge_factor(Label(la), Label(lb));
                assert!((1..=DEFAULT_PRIME as u32).contains(&f));
                for d in 1..10 {
                    let g = rand.degree_factor(Label(la), d);
                    assert!((1..=DEFAULT_PRIME as u32).contains(&g));
                }
            }
        }
    }

    #[test]
    fn handshake_factor_count() {
        // 3|E| factors per signature (§2.3).
        let rand = LabelRandomizer::new(4, DEFAULT_PRIME, 13);
        let p = PatternGraph::star("s", A, vec![B, C, B, C]);
        assert_eq!(pattern_signature(&p, &rand).len(), 3 * p.num_edges());
    }

    #[test]
    fn directed_factor_is_asymmetric_in_general() {
        let rand = LabelRandomizer::new(2, DEFAULT_PRIME, 17);
        let ab = rand.directed_edge_factor(A, B);
        let ba = rand.directed_edge_factor(B, A);
        // (r(a)-r(b)) and (r(b)-r(a)) differ mod p unless 2(r(a)-r(b)) ≡ 0.
        if rand.r(A) != rand.r(B) {
            assert_ne!(ab, ba);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_prime_rejected() {
        LabelRandomizer::new(2, 1, 0);
    }

    /// Pins the intended edge-factor arithmetic against a fully
    /// parenthesised reference. The pre-refactor expression
    /// `hi + self.p - lo % self.p` parsed as `hi + p - (lo % p)` —
    /// harmless only because r values are pre-reduced below p; this
    /// test fails if either the intended `(hi + p - lo) mod p` values
    /// or the historical parse ever drift apart.
    #[test]
    fn edge_factor_precedence_pinned() {
        for seed in [0u64, 7, 42] {
            let rand = LabelRandomizer::new(5, DEFAULT_PRIME, seed);
            let p = rand.prime();
            for a in 0..5u16 {
                for b in 0..5u16 {
                    let (la, lb) = (Label(a), Label(b));
                    let (hi, lo) = if la.index() <= lb.index() {
                        (rand.r(lb), rand.r(la))
                    } else {
                        (rand.r(la), rand.r(lb))
                    };
                    let intended = {
                        let m = (hi + p - lo) % p;
                        (if m == 0 { p } else { m }) as u32
                    };
                    #[allow(clippy::precedence)]
                    let historical_parse = {
                        let m = (hi + p - lo % p) % p;
                        (if m == 0 { p } else { m }) as u32
                    };
                    assert_eq!(rand.edge_factor(la, lb), intended);
                    assert_eq!(intended, historical_parse, "r values must be < p");

                    let directed_intended = {
                        let m = (rand.r(la) + p - rand.r(lb)) % p;
                        (if m == 0 { p } else { m }) as u32
                    };
                    assert_eq!(rand.directed_edge_factor(la, lb), directed_intended);
                }
            }
        }
        // And the paper's exact worked value stays pinned.
        let paper = LabelRandomizer::paper_example(2);
        assert_eq!(paper.edge_factor(A, B), 7);
    }

    #[test]
    fn fingerprint_is_order_independent_and_incremental() {
        let a = FactorSet::from_factors(vec![9, 1, 5, 5, 2]);
        let b = FactorSet::from_factors(vec![5, 2, 9, 5, 1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);

        // insert keeps fp consistent with a from-scratch build.
        let mut c = FactorSet::from_factors(vec![1, 2, 5]);
        c.insert(5);
        c.insert(9);
        assert_eq!(c, a);
        assert_eq!(c.fingerprint(), a.fingerprint());

        // with_delta extends fp incrementally.
        let base = FactorSet::from_factors(vec![4, 8]);
        let d = Delta::new(3, 8, 15);
        let grown = base.with_delta(&d);
        assert_eq!(grown, FactorSet::from_factors(vec![3, 4, 8, 8, 15]));
        assert_eq!(
            grown.fingerprint(),
            FactorSet::from_factors(vec![3, 4, 8, 8, 15]).fingerprint()
        );

        // difference subtracts fp exactly.
        let diff = grown.difference(&base).unwrap();
        assert_eq!(diff, d.to_factor_set());
        assert_eq!(diff.fingerprint(), d.to_factor_set().fingerprint());
    }

    #[test]
    fn with_delta_merge_handles_boundaries() {
        // Delta factors entirely below, interleaved with, and above the
        // existing run — the merge's edge cases.
        let base = FactorSet::from_factors(vec![10, 20, 30]);
        for d in [
            Delta::new(1, 2, 3),
            Delta::new(5, 20, 35),
            Delta::new(40, 50, 60),
            Delta::new(10, 10, 10),
        ] {
            let merged = base.with_delta(&d);
            let mut expect = base.factors().to_vec();
            expect.extend_from_slice(d.factors());
            expect.sort_unstable();
            assert_eq!(merged.factors(), expect.as_slice());
        }
        // Empty base.
        let d = Delta::new(7, 4, 11);
        assert_eq!(FactorSet::empty().with_delta(&d), d.to_factor_set());
    }
}
