//! The TPSTry++ — Traversal Pattern Summary Trie (§2, Alg. 1).
//!
//! A DAG in which every node represents a connected sub-graph of some
//! query in the workload, identified by its factor-multiset signature;
//! every parent is a strict sub-graph of its children, and each
//! parent→child link is annotated with the **delta factors** the added
//! edge contributes. Node supports track how frequently each sub-graph
//! occurs across the workload; nodes at or above the support threshold
//! `T` are *motifs* (§1.3), and the support anti-monotonicity argument
//! of §3 (a node's support never exceeds its ancestors') makes the
//! motif set downward-closed.
//!
//! Alg. 1 builds the trie by recursively re-adding edges of each query
//! from every starting edge. The set of graphs that recursion touches
//! is exactly the connected edge subsets of the query, so this
//! implementation enumerates those subsets directly (see
//! [`crate::subgraph_enum`]) and computes each node's signature
//! incrementally from a parent, as the algorithm does.

use crate::signature::{FactorSet, LabelRandomizer};
use crate::subgraph_enum::{connected_edge_subsets, subset_pattern};
use crate::Delta;
use loom_graph::{Label, PatternGraph, Workload};
use std::collections::HashMap;

/// Identifier of a TPSTry++ node. Node 0 is the root (the empty graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrieNodeId(pub u32);

impl TrieNodeId {
    /// The root node (empty graph, empty signature).
    pub const ROOT: TrieNodeId = TrieNodeId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of the TPSTry++: one equivalence class of query sub-graphs
/// under signature equality.
#[derive(Clone, Debug)]
pub struct TrieNode {
    /// Factor-multiset signature of the represented graph.
    pub signature: FactorSet,
    /// Accumulated (raw) workload frequency of queries containing this
    /// sub-graph.
    pub support: f64,
    /// Edge count of the represented graph.
    pub num_edges: usize,
    /// Children with the delta factors of the connecting edge addition.
    pub children: Vec<(Delta, TrieNodeId)>,
    /// A representative pattern for this node (first one interned);
    /// used by reports and tests, never by the matcher.
    pub example: Option<PatternGraph>,
}

/// The TPSTry++ for a workload.
#[derive(Clone, Debug)]
pub struct TpsTrie {
    nodes: Vec<TrieNode>,
    by_signature: HashMap<FactorSet, TrieNodeId>,
    total_frequency: f64,
    collisions: usize,
}

impl TpsTrie {
    /// Build the trie for a whole workload (Fig. 3's progressive merge).
    pub fn build(workload: &Workload, rand: &LabelRandomizer) -> Self {
        let mut trie = TpsTrie::new();
        for (q, f) in workload.queries() {
            trie.add_query(q, *f, rand);
        }
        trie
    }

    /// An empty trie containing only the root.
    pub fn new() -> Self {
        let root = TrieNode {
            signature: FactorSet::empty(),
            support: 0.0,
            num_edges: 0,
            children: Vec::new(),
            example: None,
        };
        let mut by_signature = HashMap::new();
        by_signature.insert(FactorSet::empty(), TrieNodeId::ROOT);
        TpsTrie {
            nodes: vec![root],
            by_signature,
            total_frequency: 0.0,
            collisions: 0,
        }
    }

    /// Add one query with its workload frequency (Alg. 1, plus the
    /// incremental-update story of §2: "the TPSTry++ may be trivially
    /// updated" as the workload evolves — call this again with new
    /// queries or frequency increments).
    pub fn add_query(&mut self, q: &PatternGraph, frequency: f64, rand: &LabelRandomizer) {
        assert!(frequency > 0.0, "frequency must be positive");
        self.total_frequency += frequency;
        if q.num_edges() == 0 {
            return;
        }

        let subsets = connected_edge_subsets(q);
        // Signature per subset, computed incrementally: subsets are
        // ordered by popcount, so a parent (mask minus one edge) is
        // always resolved before its children.
        let mut sig_of: HashMap<u64, FactorSet> = HashMap::with_capacity(subsets.len());
        let mut node_of: HashMap<u64, TrieNodeId> = HashMap::with_capacity(subsets.len());
        // Distinct trie nodes this query supports (count each once per
        // query — support is "relative frequency with which G_n occurs
        // in Q", §3).
        let mut supported: Vec<TrieNodeId> = Vec::new();

        for &mask in &subsets {
            let (parent_mask, sig, delta) = if mask.count_ones() == 1 {
                let i = mask.trailing_zeros() as usize;
                let (u, v) = q.edge_list()[i];
                let d = crate::signature::single_edge_delta(rand, q.label(u), q.label(v));
                (0u64, d.to_factor_set(), d)
            } else {
                // Remove the highest set bit to find a parent subset; if
                // that subset is disconnected, fall back to scanning for
                // any removable edge keeping connectivity. Connected
                // graphs always have at least one such edge (any leaf
                // edge of a spanning tree).
                let parent_mask = removable_parent(q, mask, &sig_of);
                let added = (mask & !parent_mask).trailing_zeros() as usize;
                let delta = delta_for_extension(q, parent_mask, added, rand);
                let sig = sig_of[&parent_mask].with_delta(&delta);
                (parent_mask, sig, delta)
            };

            let node = self.intern(sig.clone(), mask.count_ones() as usize, || {
                subset_pattern(q, mask, "trie-node")
            });
            sig_of.insert(mask, sig);
            node_of.insert(mask, node);
            if !supported.contains(&node) {
                supported.push(node);
            }
            let parent_node = if parent_mask == 0 {
                TrieNodeId::ROOT
            } else {
                node_of[&parent_mask]
            };
            self.link(parent_node, delta, node);

            // Also register links from *every* other parent subset (the
            // DAG property: a-b-a-b is reachable from both b-a-b and
            // a-b-a, Fig. 2). The primary parent above is just the one
            // we compute the signature through.
            if mask.count_ones() >= 2 {
                for i in 0..q.num_edges() {
                    let bit = 1u64 << i;
                    if mask & bit == 0 || (mask & !bit) == parent_mask {
                        continue;
                    }
                    let other_parent = mask & !bit;
                    if let Some(&pn) = node_of.get(&other_parent) {
                        let d = delta_for_extension(q, other_parent, i, rand);
                        self.link(pn, d, node);
                    }
                }
            }
        }

        for node in supported {
            self.nodes[node.index()].support += frequency;
        }
    }

    fn intern(
        &mut self,
        sig: FactorSet,
        num_edges: usize,
        example: impl FnOnce() -> PatternGraph,
    ) -> TrieNodeId {
        if let Some(&id) = self.by_signature.get(&sig) {
            // Collision bookkeeping: if the incoming sub-graph is not
            // isomorphic to this node's representative, two distinct
            // graph classes share a signature. The trie still merges
            // them (the probabilistic scheme tolerates false positives,
            // §2.3) but the counter lets callers — and the property
            // tests — know that support anti-monotonicity is no longer
            // guaranteed on this instance.
            if let Some(existing) = &self.nodes[id.index()].example {
                let incoming = example();
                if !crate::isomorphism::are_isomorphic(existing, &incoming) {
                    self.collisions += 1;
                }
            }
            return id;
        }
        let id = TrieNodeId(self.nodes.len() as u32);
        self.nodes.push(TrieNode {
            signature: sig.clone(),
            support: 0.0,
            num_edges,
            children: Vec::new(),
            example: Some(example()),
        });
        self.by_signature.insert(sig, id);
        id
    }

    fn link(&mut self, parent: TrieNodeId, delta: Delta, child: TrieNodeId) {
        let children = &mut self.nodes[parent.index()].children;
        if !children.iter().any(|&(d, c)| d == delta && c == child) {
            children.push((delta, child));
        }
    }

    /// The node with the given signature, if present.
    pub fn node_by_signature(&self, sig: &FactorSet) -> Option<TrieNodeId> {
        self.by_signature.get(sig).copied()
    }

    /// Access a node.
    pub fn node(&self, id: TrieNodeId) -> &TrieNode {
        &self.nodes[id.index()]
    }

    /// Total number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the trie holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Sum of workload frequencies added so far.
    pub fn total_frequency(&self) -> f64 {
        self.total_frequency
    }

    /// Number of signature collisions observed during construction:
    /// occasions where a sub-graph interned into a node whose
    /// representative it is *not* isomorphic to. Zero for almost all
    /// workloads at `p = 251`; when non-zero, support values mix the
    /// colliding classes and the anti-monotonicity guarantee of §3
    /// weakens to "probably".
    pub fn collision_count(&self) -> usize {
        self.collisions
    }

    /// Normalised support of a node in `[0, 1]`.
    pub fn relative_support(&self, id: TrieNodeId) -> f64 {
        if self.total_frequency == 0.0 {
            0.0
        } else {
            self.nodes[id.index()].support / self.total_frequency
        }
    }

    /// All node ids except the root.
    pub fn node_ids(&self) -> impl Iterator<Item = TrieNodeId> + '_ {
        (1..self.nodes.len() as u32).map(TrieNodeId)
    }

    /// Filter to the motif sub-DAG: nodes with relative support `>= t`
    /// (§1.3's threshold `T`; the evaluation uses 40%).
    pub fn motifs(&self, threshold: f64) -> MotifIndex {
        MotifIndex::from_trie(self, threshold)
    }

    /// Exponentially decay every support by `factor ∈ (0, 1]` — the
    /// sliding-window view of an *evolving* workload (§2 notes the
    /// trie "may be trivially updated to account for change in the
    /// frequencies of workload queries"; §6 makes workload change
    /// future work). Old queries fade; calling [`TpsTrie::add_query`]
    /// with fresh observations then re-weights the motif set without
    /// rebuilding.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn decay(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decay factor must be in (0, 1]"
        );
        self.total_frequency *= factor;
        for node in &mut self.nodes {
            node.support *= factor;
        }
    }
}

impl Default for TpsTrie {
    fn default() -> Self {
        Self::new()
    }
}

/// Pick a parent subset of `mask` (one edge removed, still connected,
/// already resolved in `sig_of`).
fn removable_parent(q: &PatternGraph, mask: u64, sig_of: &HashMap<u64, FactorSet>) -> u64 {
    for i in 0..q.num_edges() {
        let bit = 1u64 << i;
        if mask & bit != 0 {
            let parent = mask & !bit;
            if sig_of.contains_key(&parent) {
                return parent;
            }
        }
    }
    unreachable!("connected subset {mask:b} has no resolved parent — enumeration order broken");
}

/// Delta factors for extending the subset `parent_mask` of `q` with edge
/// index `added` (Alg. 1's `factors(e, g)`).
fn delta_for_extension(
    q: &PatternGraph,
    parent_mask: u64,
    added: usize,
    rand: &LabelRandomizer,
) -> Delta {
    let (u, v) = q.edge_list()[added];
    let mut du = 0usize;
    let mut dv = 0usize;
    for (i, &(a, b)) in q.edge_list().iter().enumerate() {
        if parent_mask & (1 << i) != 0 {
            if a == u || b == u {
                du += 1;
            }
            if a == v || b == v {
                dv += 1;
            }
        }
    }
    crate::signature::edge_delta(rand, q.label(u), du + 1, q.label(v), dv + 1)
}

/// Identifier of a motif in a [`MotifIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MotifId(pub u32);

impl MotifId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of a [`Delta`] interned by a [`MotifIndex`].
///
/// The index assigns ids `0..num_deltas()` to the distinct delta
/// annotations appearing on motif links (sorted, so ids are a pure
/// function of the motif set). The matcher resolves each candidate
/// edge addition to a `DeltaId` once and then walks the dense
/// per-node child tables — no per-candidate `Delta` comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeltaId(pub u32);

impl DeltaId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One motif: a frequent traversal pattern the matcher hunts for.
#[derive(Clone, Debug)]
pub struct Motif {
    /// Factor-multiset signature.
    pub signature: FactorSet,
    /// Normalised support in `[0, 1]` (the `supp(m_k)` of Eq. 1).
    pub support: f64,
    /// Edge count of the motif graph.
    pub num_edges: usize,
    /// Children within the motif sub-DAG, keyed by delta factors.
    pub children: Vec<(Delta, MotifId)>,
    /// Representative pattern, for reports.
    pub example: Option<PatternGraph>,
}

/// The motif sub-DAG of a TPSTry++, pre-filtered at a support threshold
/// (Alg. 2's "filtered TPSTry++ of motifs").
///
/// All delta annotations appearing on motif links are **interned** into
/// dense [`DeltaId`]s at construction, and both lookups the matcher
/// performs per candidate — the single-edge root check of §3 and the
/// Alg. 2 child step — are flat-table indexes `[node][delta]` rather
/// than hash probes or linear scans. This is sound because, for a
/// fixed parent, the delta determines the child uniquely: children are
/// interned by signature and `child.sig = parent.sig + delta`.
#[derive(Clone, Debug)]
pub struct MotifIndex {
    motifs: Vec<Motif>,
    threshold: f64,
    max_motif_edges: usize,
    /// Sorted distinct deltas of every motif link (root links
    /// included); position = [`DeltaId`].
    deltas: Vec<Delta>,
    /// Flat `[motif][delta] -> child motif id + 1` table (0 = none).
    child_table: Vec<u32>,
    /// `[delta] -> single-edge motif id + 1` table (0 = none).
    single_edge_table: Vec<u32>,
}

impl MotifIndex {
    fn from_trie(trie: &TpsTrie, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold is a relative support in [0, 1]"
        );
        let mut remap: HashMap<TrieNodeId, MotifId> = HashMap::new();
        let mut motifs = Vec::new();
        for id in trie.node_ids() {
            if trie.relative_support(id) >= threshold {
                let node = trie.node(id);
                let mid = MotifId(motifs.len() as u32);
                remap.insert(id, mid);
                motifs.push(Motif {
                    signature: node.signature.clone(),
                    support: trie.relative_support(id),
                    num_edges: node.num_edges,
                    children: Vec::new(),
                    example: node.example.clone(),
                });
            }
        }
        // Wire children restricted to motif nodes.
        for (&tid, &mid) in &remap {
            for &(delta, child) in &trie.node(tid).children {
                if let Some(&cm) = remap.get(&child) {
                    motifs[mid.index()].children.push((delta, cm));
                }
            }
        }
        let mut single_edge: Vec<(Delta, MotifId)> = Vec::new();
        for &(delta, child) in &trie.node(TrieNodeId::ROOT).children {
            if let Some(&cm) = remap.get(&child) {
                single_edge.push((delta, cm));
            }
        }
        let max_motif_edges = motifs.iter().map(|m| m.num_edges).max().unwrap_or(0);

        // Intern every delta appearing on a motif link. Sorting makes
        // DeltaIds a pure function of the motif set (determinism
        // contract), independent of the HashMap iteration above.
        let mut deltas: Vec<Delta> = single_edge
            .iter()
            .map(|&(d, _)| d)
            .chain(
                motifs
                    .iter()
                    .flat_map(|m| m.children.iter().map(|&(d, _)| d)),
            )
            .collect();
        deltas.sort_unstable();
        deltas.dedup();

        let delta_pos = |d: &Delta| deltas.binary_search(d).expect("interned above");
        let mut child_table = vec![0u32; motifs.len() * deltas.len()];
        for (mi, m) in motifs.iter().enumerate() {
            for &(d, c) in &m.children {
                child_table[mi * deltas.len() + delta_pos(&d)] = c.0 + 1;
            }
        }
        let mut single_edge_table = vec![0u32; deltas.len()];
        for &(d, c) in &single_edge {
            single_edge_table[delta_pos(&d)] = c.0 + 1;
        }

        MotifIndex {
            motifs,
            threshold,
            max_motif_edges,
            deltas,
            child_table,
            single_edge_table,
        }
    }

    /// Number of motifs.
    pub fn len(&self) -> usize {
        self.motifs.len()
    }

    /// True when no node cleared the threshold.
    pub fn is_empty(&self) -> bool {
        self.motifs.is_empty()
    }

    /// The threshold this index was filtered at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Edge count of the largest motif — bounds how deep the matcher
    /// ever grows a match (§2.3: "the largest graph for which we
    /// calculate a signature is the size of the largest query graph").
    pub fn max_motif_edges(&self) -> usize {
        self.max_motif_edges
    }

    /// Access a motif.
    pub fn get(&self, id: MotifId) -> &Motif {
        &self.motifs[id.index()]
    }

    /// Number of distinct interned deltas.
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// The dense id of a delta, if it annotates any motif link.
    #[inline]
    pub fn delta_id(&self, delta: Delta) -> Option<DeltaId> {
        self.deltas
            .binary_search(&delta)
            .ok()
            .map(|i| DeltaId(i as u32))
    }

    /// The interned delta behind an id.
    #[inline]
    pub fn delta(&self, id: DeltaId) -> Delta {
        self.deltas[id.index()]
    }

    /// The single-edge motif matching this delta, if any — the root
    /// check every stream edge passes through (§3).
    pub fn single_edge_motif(&self, delta: Delta) -> Option<MotifId> {
        self.delta_id(delta)
            .and_then(|d| self.single_edge_motif_by_id(d))
    }

    /// [`MotifIndex::single_edge_motif`] on a pre-resolved delta id —
    /// one table index, the matcher's per-edge fast path.
    #[inline]
    pub fn single_edge_motif_by_id(&self, delta: DeltaId) -> Option<MotifId> {
        match self.single_edge_table[delta.index()] {
            0 => None,
            c => Some(MotifId(c - 1)),
        }
    }

    /// The motif child of `m` whose connecting delta equals `delta`
    /// (Alg. 2, lines 7 and 15).
    pub fn child_with_delta(&self, m: MotifId, delta: Delta) -> Option<MotifId> {
        self.delta_id(delta)
            .and_then(|d| self.child_with_delta_by_id(m, d))
    }

    /// [`MotifIndex::child_with_delta`] on a pre-resolved delta id —
    /// one table index, no scan.
    #[inline]
    pub fn child_with_delta_by_id(&self, m: MotifId, delta: DeltaId) -> Option<MotifId> {
        match self.child_table[m.index() * self.deltas.len() + delta.index()] {
            0 => None,
            c => Some(MotifId(c - 1)),
        }
    }

    /// Iterate over `(MotifId, &Motif)`.
    pub fn iter(&self) -> impl Iterator<Item = (MotifId, &Motif)> {
        self.motifs
            .iter()
            .enumerate()
            .map(|(i, m)| (MotifId(i as u32), m))
    }
}

/// Dense lookup table `(label_a, degree_a, label_b, degree_b)` →
/// [`DeltaId`], precomputed over the full label alphabet and every
/// degree a vertex can reach inside a motif match (`1..=`
/// [`MotifIndex::max_motif_edges`]).
///
/// The matcher's inner loops resolve one candidate edge addition per
/// existing match; with this table that resolution is a single index
/// instead of three field-arithmetic factor computations, a 3-element
/// sort and a delta search. Entries whose delta annotates no motif
/// link hold `None` — the candidate can be discarded without ever
/// materialising its [`Delta`].
///
/// Size is `|L|² · max_edges²` entries (§5.1's largest alphabet is 15
/// labels; motifs top out at the largest query, so a few thousand
/// `u32`s).
#[derive(Clone, Debug)]
pub struct DeltaLut {
    num_labels: usize,
    max_degree: usize,
    /// `delta_id + 1`, 0 = no motif link carries this delta.
    table: Vec<u32>,
}

impl DeltaLut {
    /// Precompute the table for a motif index under the run's label
    /// randomizer.
    pub fn build(index: &MotifIndex, rand: &LabelRandomizer) -> Self {
        let num_labels = rand.num_labels();
        let max_degree = index.max_motif_edges();
        let mut table = vec![0u32; num_labels * num_labels * max_degree * max_degree];
        for la in 0..num_labels {
            for lb in 0..num_labels {
                for da in 1..=max_degree {
                    for db in 1..=max_degree {
                        let delta = crate::signature::edge_delta(
                            rand,
                            Label(la as u16),
                            da,
                            Label(lb as u16),
                            db,
                        );
                        if let Some(id) = index.delta_id(delta) {
                            let idx = ((la * num_labels + lb) * max_degree + (da - 1)) * max_degree
                                + (db - 1);
                            table[idx] = id.0 + 1;
                        }
                    }
                }
            }
        }
        DeltaLut {
            num_labels,
            max_degree,
            table,
        }
    }

    /// The delta id for adding an edge between vertices labelled
    /// `la`/`lb` whose *resulting* degrees are `da`/`db`, or `None` if
    /// no motif link carries that delta (or a degree exceeds what any
    /// motif can hold).
    #[inline]
    pub fn delta_id(&self, la: Label, da: usize, lb: Label, db: usize) -> Option<DeltaId> {
        debug_assert!(da >= 1 && db >= 1, "degrees are post-addition, >= 1");
        // Out-of-alphabet labels would silently alias another pair's
        // table row rather than go out of bounds; the pre-LUT path
        // panicked in LabelRandomizer::r, so keep that invariant loud
        // in release too — two predictable compares on a table probe.
        assert!(
            la.index() < self.num_labels && lb.index() < self.num_labels,
            "label outside the alphabet the LUT was built for"
        );
        if da > self.max_degree || db > self.max_degree {
            return None;
        }
        let idx = ((la.index() * self.num_labels + lb.index()) * self.max_degree + (da - 1))
            * self.max_degree
            + (db - 1);
        match self.table[idx] {
            0 => None,
            id => Some(DeltaId(id - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{pattern_signature, DEFAULT_PRIME};
    use loom_graph::Label;

    const A: Label = Label(0);
    const B: Label = Label(1);
    const C: Label = Label(2);

    fn rand4() -> LabelRandomizer {
        LabelRandomizer::new(4, DEFAULT_PRIME, 42)
    }

    #[test]
    fn single_query_path_nodes() {
        // a-b-c contributes nodes: a-b, b-c, a-b-c.
        let rand = rand4();
        let mut trie = TpsTrie::new();
        trie.add_query(&PatternGraph::path("q", vec![A, B, C]), 1.0, &rand);
        assert_eq!(trie.len(), 4, "root + 3 sub-graphs");
    }

    #[test]
    fn isomorphic_subgraphs_merge() {
        // q1 = a-b-a-b cycle: its four single edges are all a-b and must
        // intern to ONE node (Fig. 3's motivation).
        let rand = rand4();
        let mut trie = TpsTrie::new();
        trie.add_query(&PatternGraph::cycle("q1", vec![A, B, A, B]), 1.0, &rand);
        let root = trie.node(TrieNodeId::ROOT);
        assert_eq!(root.children.len(), 1, "one single-edge class");
        // Nodes: a-b, a-b-a, b-a-b, 3-edge path a-b-a-b, 4-cycle = 5 + root.
        assert_eq!(trie.len(), 6);
    }

    #[test]
    fn figure2_motifs_at_40_percent() {
        // The running example: Q(q1:30, q2:60, q3:10), T = 40% — motifs
        // must be exactly {a-b, b-c, a-b-c} (the shaded nodes of Fig. 2).
        let rand = rand4();
        let workload = Workload::figure1_example();
        let trie = TpsTrie::build(&workload, &rand);
        let motifs = trie.motifs(0.4);
        assert_eq!(motifs.len(), 3, "Fig. 2 shades exactly three nodes");

        let sig_ab = pattern_signature(&PatternGraph::path("ab", vec![A, B]), &rand);
        let sig_bc = pattern_signature(&PatternGraph::path("bc", vec![B, C]), &rand);
        let sig_abc = pattern_signature(&PatternGraph::path("abc", vec![A, B, C]), &rand);
        let mut got: Vec<&FactorSet> = motifs.iter().map(|(_, m)| &m.signature).collect();
        got.sort();
        let mut want = vec![&sig_ab, &sig_bc, &sig_abc];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn figure2_supports() {
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let sig_ab = pattern_signature(&PatternGraph::path("ab", vec![A, B]), &rand);
        let ab = trie.node_by_signature(&sig_ab).unwrap();
        // a-b occurs in all three queries: support 30 + 60 + 10 = 100%.
        assert!((trie.relative_support(ab) - 1.0).abs() < 1e-12);
        let sig_aba = pattern_signature(&PatternGraph::path("aba", vec![A, B, A]), &rand);
        let aba = trie.node_by_signature(&sig_aba).unwrap();
        // a-b-a occurs only in q1: 30%.
        assert!((trie.relative_support(aba) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn support_is_anti_monotone() {
        // Every child's support must be <= every parent's (§3's pruning
        // argument).
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        for id in trie.node_ids() {
            let parent_supp = trie.node(id).support;
            for &(_, child) in &trie.node(id).children {
                assert!(
                    trie.node(child).support <= parent_supp + 1e-12,
                    "child support exceeds parent"
                );
            }
        }
    }

    #[test]
    fn dag_node_reachable_via_multiple_parents() {
        // Fig. 2: a-b-a-b (path) has parents b-a-b AND a-b-a.
        let rand = rand4();
        let mut trie = TpsTrie::new();
        trie.add_query(&PatternGraph::path("q", vec![A, B, A, B]), 1.0, &rand);
        let sig_aba = pattern_signature(&PatternGraph::path("aba", vec![A, B, A]), &rand);
        let sig_bab = pattern_signature(&PatternGraph::path("bab", vec![B, A, B]), &rand);
        let sig_abab = pattern_signature(&PatternGraph::path("abab", vec![A, B, A, B]), &rand);
        let aba = trie.node_by_signature(&sig_aba).unwrap();
        let bab = trie.node_by_signature(&sig_bab).unwrap();
        let abab = trie.node_by_signature(&sig_abab).unwrap();
        assert!(trie.node(aba).children.iter().any(|&(_, c)| c == abab));
        assert!(trie.node(bab).children.iter().any(|&(_, c)| c == abab));
    }

    #[test]
    fn child_signature_is_parent_plus_delta() {
        // Structural invariant the matcher depends on: for every link,
        // child.sig == parent.sig + delta.
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let mut checked = 0;
        for id in std::iter::once(TrieNodeId::ROOT).chain(trie.node_ids()) {
            let parent = trie.node(id);
            for &(delta, child) in &parent.children {
                let expect = parent.signature.with_delta(&delta);
                assert_eq!(expect, trie.node(child).signature);
                checked += 1;
            }
        }
        assert!(checked > 5, "expected several links, got {checked}");
    }

    #[test]
    fn motif_index_single_edge_lookup() {
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let motifs = trie.motifs(0.4);
        let ab = crate::signature::single_edge_delta(&rand, A, B);
        let bc = crate::signature::single_edge_delta(&rand, B, C);
        let cd = crate::signature::single_edge_delta(&rand, C, Label(3));
        assert!(motifs.single_edge_motif(ab).is_some());
        assert!(motifs.single_edge_motif(bc).is_some());
        assert!(motifs.single_edge_motif(cd).is_none(), "c-d is 10% < 40%");
    }

    #[test]
    fn motif_child_lookup_follows_delta() {
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let motifs = trie.motifs(0.4);
        let ab = motifs
            .single_edge_motif(crate::signature::single_edge_delta(&rand, A, B))
            .unwrap();
        // Extending a-b with b-c (b reaching degree 2, c fresh) lands on
        // the a-b-c motif.
        let delta = crate::signature::edge_delta(&rand, B, 2, C, 1);
        let abc = motifs.child_with_delta(ab, delta);
        assert!(abc.is_some());
        assert_eq!(motifs.get(abc.unwrap()).num_edges, 2);
    }

    #[test]
    fn threshold_one_hundred_percent() {
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let motifs = trie.motifs(1.0);
        // Only a-b is in every query.
        assert_eq!(motifs.len(), 1);
        assert_eq!(motifs.max_motif_edges(), 1);
    }

    #[test]
    fn incremental_workload_update_shifts_motifs() {
        // §2's evolving-workload claim: adding weight to q3 promotes its
        // sub-graphs past the threshold.
        let rand = rand4();
        let workload = Workload::figure1_example();
        let mut trie = TpsTrie::build(&workload, &rand);
        let before = trie.motifs(0.4).len();
        let (q3, _) = &workload.queries()[2];
        trie.add_query(q3, 200.0, &rand); // q3 now dominates
        let after = trie.motifs(0.4).len();
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    fn empty_trie_has_no_motifs() {
        let trie = TpsTrie::new();
        assert!(trie.is_empty());
        assert!(trie.motifs(0.4).is_empty());
    }

    #[test]
    fn decay_preserves_relative_supports() {
        let rand = rand4();
        let mut trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let before: Vec<f64> = trie
            .node_ids()
            .map(|id| trie.relative_support(id))
            .collect();
        trie.decay(0.5);
        let after: Vec<f64> = trie
            .node_ids()
            .map(|id| trie.relative_support(id))
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12, "decay must not change ratios");
        }
        assert_eq!(
            trie.motifs(0.4).len(),
            3,
            "motif set unchanged by pure decay"
        );
    }

    #[test]
    fn decay_plus_fresh_queries_shifts_motifs() {
        // A workload drifting from the Fig. 1 mix to pure q3: after a
        // strong decay and fresh q3 weight, q3's sub-graphs dominate.
        let rand = rand4();
        let workload = Workload::figure1_example();
        let mut trie = TpsTrie::build(&workload, &rand);
        let sig_cd = pattern_signature(&PatternGraph::path("cd", vec![C, Label(3)]), &rand);
        let cd = trie.node_by_signature(&sig_cd).unwrap();
        assert!(
            trie.relative_support(cd) < 0.4,
            "c-d starts below threshold"
        );
        trie.decay(0.1);
        let (q3, _) = &workload.queries()[2];
        trie.add_query(q3, 50.0, &rand);
        assert!(
            trie.relative_support(cd) >= 0.4,
            "c-d should clear the threshold after drift: {}",
            trie.relative_support(cd)
        );
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_rejects_bad_factor() {
        TpsTrie::new().decay(0.0);
    }

    #[test]
    fn delta_interning_agrees_with_links() {
        // Every link delta must be interned; every interned delta must
        // resolve the same child through the dense table as through a
        // linear scan of the children list.
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let motifs = trie.motifs(0.4);
        assert!(motifs.num_deltas() > 0);
        let mut links = 0;
        for (mid, m) in motifs.iter() {
            for &(d, c) in &m.children {
                let did = motifs.delta_id(d).expect("link delta interned");
                assert_eq!(motifs.delta(did), d);
                assert_eq!(motifs.child_with_delta_by_id(mid, did), Some(c));
                links += 1;
            }
        }
        assert!(links > 0, "figure-1 motifs have at least one link");
        // A delta absent from every link resolves to nothing.
        let absent = Delta::new(9999, 9998, 9997);
        assert!(motifs.delta_id(absent).is_none());
        assert!(motifs.single_edge_motif(absent).is_none());
    }

    #[test]
    fn delta_lut_matches_direct_computation() {
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        let motifs = trie.motifs(0.4);
        let lut = DeltaLut::build(&motifs, &rand);
        let max = motifs.max_motif_edges();
        for la in 0..rand.num_labels() as u16 {
            for lb in 0..rand.num_labels() as u16 {
                for da in 1..=max {
                    for db in 1..=max {
                        let delta =
                            crate::signature::edge_delta(&rand, Label(la), da, Label(lb), db);
                        assert_eq!(
                            lut.delta_id(Label(la), da, Label(lb), db),
                            motifs.delta_id(delta),
                            "LUT diverges at ({la},{da},{lb},{db})"
                        );
                    }
                }
            }
        }
        // Degrees beyond any motif resolve to None without panicking.
        assert!(lut.delta_id(Label(0), max + 1, Label(1), 1).is_none());
    }

    #[test]
    fn figure1_workload_is_collision_free() {
        // The running example — and all evaluation workloads — must
        // build without signature collisions at p = 251, otherwise the
        // anti-monotonicity argument of §3 wouldn't apply to them.
        let rand = rand4();
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        assert_eq!(trie.collision_count(), 0);
    }

    #[test]
    fn collisions_are_detected_at_tiny_primes() {
        // At p = 2 every edge factor is forced into {1, 2}: distinct
        // label pairs collide constantly and the counter must notice.
        let rand = LabelRandomizer::new(4, 2, 5);
        let mut trie = TpsTrie::new();
        // Two structurally different queries over disjoint labels.
        trie.add_query(&PatternGraph::path("p1", vec![A, B, A, B]), 1.0, &rand);
        trie.add_query(
            &PatternGraph::star("p2", C, vec![Label(3), Label(3), Label(3)]),
            1.0,
            &rand,
        );
        assert!(
            trie.collision_count() > 0,
            "p = 2 must produce detectable collisions"
        );
    }
}
