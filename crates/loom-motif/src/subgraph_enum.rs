//! Connected sub-graph enumeration over pattern graphs (§2.2).
//!
//! Alg. 1 "rebuilds" a query graph edge-by-edge from every starting
//! edge; the set of graphs it touches is exactly the set of *connected
//! edge subsets* of the query. This module enumerates those subsets as
//! bitmasks over the pattern's edge list (queries have ≤ ~10 edges, so
//! `u64` masks are ample), which both the TPSTry++ builder and its tests
//! consume.

use loom_graph::PatternGraph;
use std::collections::HashSet;

/// All connected, non-empty edge subsets of `p`, as bitmasks over
/// `p.edge_list()` indices. Output is sorted by (popcount, mask) so
/// smaller sub-graphs come first — the order the trie wants.
///
/// # Panics
/// Panics if the pattern has more than 63 edges (far beyond the paper's
/// query sizes).
pub fn connected_edge_subsets(p: &PatternGraph) -> Vec<u64> {
    assert!(
        p.num_edges() <= 63,
        "pattern too large for mask enumeration"
    );
    let mut seen: HashSet<u64> = HashSet::new();
    let mut frontier: Vec<u64> = Vec::new();
    for i in 0..p.num_edges() {
        let m = 1u64 << i;
        if seen.insert(m) {
            frontier.push(m);
        }
    }
    let mut all: Vec<u64> = frontier.clone();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &mask in &frontier {
            for e in incident_edges(p, mask) {
                let m2 = mask | (1u64 << e);
                if m2 != mask && seen.insert(m2) {
                    next.push(m2);
                    all.push(m2);
                }
            }
        }
        frontier = next;
    }
    all.sort_unstable_by_key(|&m| (m.count_ones(), m));
    all
}

/// Indices of edges not in `mask` that share a vertex with an edge in
/// `mask` — the legal single-edge extensions that keep the subset
/// connected (Alg. 1's `newEdges`).
pub fn incident_edges(p: &PatternGraph, mask: u64) -> Vec<usize> {
    let mut in_vertices = vec![false; p.num_vertices()];
    for (i, &(u, v)) in p.edge_list().iter().enumerate() {
        if mask & (1 << i) != 0 {
            in_vertices[u] = true;
            in_vertices[v] = true;
        }
    }
    let mut out = Vec::new();
    for (i, &(u, v)) in p.edge_list().iter().enumerate() {
        if mask & (1 << i) == 0 && (in_vertices[u] || in_vertices[v]) {
            out.push(i);
        }
    }
    out
}

/// Materialise the sub-pattern induced by an edge subset as its own
/// [`PatternGraph`] (used by tests and by the trie's debug views).
/// Vertices untouched by the subset are dropped and indices compacted.
pub fn subset_pattern(p: &PatternGraph, mask: u64, name: &str) -> PatternGraph {
    let mut remap = vec![usize::MAX; p.num_vertices()];
    let mut labels = Vec::new();
    let mut edges = Vec::new();
    for (i, &(u, v)) in p.edge_list().iter().enumerate() {
        if mask & (1 << i) != 0 {
            for &x in &[u, v] {
                if remap[x] == usize::MAX {
                    remap[x] = labels.len();
                    labels.push(p.label(x));
                }
            }
            edges.push((remap[u], remap[v]));
        }
    }
    PatternGraph::new(name, labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    const A: Label = Label(0);
    const B: Label = Label(1);
    const C: Label = Label(2);

    #[test]
    fn path_subsets() {
        // a-b-c: subsets {e0}, {e1}, {e0,e1} — all connected.
        let p = PatternGraph::path("p", vec![A, B, C]);
        let subs = connected_edge_subsets(&p);
        assert_eq!(subs, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn long_path_excludes_disconnected_pairs() {
        // a-b-c-d: {e0, e2} is disconnected and must not appear.
        let p = PatternGraph::path("p", vec![A, B, C, A]);
        let subs = connected_edge_subsets(&p);
        assert!(!subs.contains(&0b101));
        // 3 singles + 2 adjacent pairs + 1 triple = 6.
        assert_eq!(subs.len(), 6);
    }

    #[test]
    fn cycle_subset_count() {
        // 4-cycle: 4 singles, 4 adjacent pairs, 4 triples (paths), 1 full.
        let p = PatternGraph::cycle("c", vec![A, B, A, B]);
        let subs = connected_edge_subsets(&p);
        assert_eq!(subs.len(), 13);
        // Opposite edges are disconnected.
        assert!(!subs.contains(&0b0101));
        assert!(!subs.contains(&0b1010));
    }

    #[test]
    fn subsets_sorted_by_size() {
        let p = PatternGraph::cycle("c", vec![A, B, C]);
        let subs = connected_edge_subsets(&p);
        for w in subs.windows(2) {
            assert!(w[0].count_ones() <= w[1].count_ones());
        }
    }

    #[test]
    fn incident_edges_of_middle_edge() {
        let p = PatternGraph::path("p", vec![A, B, C, A]);
        // Edge 1 (b-c) touches both edge 0 and edge 2.
        assert_eq!(incident_edges(&p, 0b010), vec![0, 2]);
        // Edge 0 only touches edge 1.
        assert_eq!(incident_edges(&p, 0b001), vec![1]);
    }

    #[test]
    fn subset_pattern_compacts_vertices() {
        let p = PatternGraph::path("p", vec![A, B, C]);
        let sub = subset_pattern(&p, 0b10, "sub");
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1);
        let mut ls = vec![sub.label(0), sub.label(1)];
        ls.sort_unstable();
        assert_eq!(ls, vec![B, C]);
    }

    #[test]
    fn star_all_subsets_connected() {
        // Every edge subset of a star shares the centre: all 2^n - 1.
        let p = PatternGraph::star("s", A, vec![B, B, C]);
        assert_eq!(connected_edge_subsets(&p).len(), 7);
    }
}
