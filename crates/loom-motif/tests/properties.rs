//! Property-based tests of signatures and the TPSTry++.

use loom_graph::Workload;
use loom_motif::collision::random_connected_pattern;
use loom_motif::subgraph_enum::{connected_edge_subsets, subset_pattern};
use loom_motif::{
    pattern_signature, subset_signature, FactorSet, LabelRandomizer, TpsTrie, DEFAULT_PRIME,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn pattern(edges: usize, labels: usize, seed: u64) -> loom_graph::PatternGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_connected_pattern(&mut rng, edges, labels, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `subset_signature` on a mask equals `pattern_signature` of the
    /// materialised sub-pattern — the incremental and from-scratch
    /// paths agree on every connected subset.
    #[test]
    fn subset_signature_matches_materialised(
        edges in 1usize..6, labels in 1usize..4, seed in any::<u64>()
    ) {
        let p = pattern(edges, labels, seed);
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 7);
        for mask in connected_edge_subsets(&p) {
            let via_mask = subset_signature(&p, mask, &rand);
            let sub = subset_pattern(&p, mask, "sub");
            prop_assert_eq!(via_mask, pattern_signature(&sub, &rand));
        }
    }

    /// Multiset difference: (a + delta) \ a == delta's factors, and
    /// a \ a is empty.
    #[test]
    fn factor_set_difference_roundtrip(
        edges in 1usize..6, labels in 1usize..4, seed in any::<u64>()
    ) {
        let p = pattern(edges, labels, seed);
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 13);
        let sig = pattern_signature(&p, &rand);
        prop_assert_eq!(
            sig.difference(&sig).unwrap(),
            FactorSet::empty()
        );
        let delta = loom_motif::single_edge_delta(
            &rand,
            loom_graph::Label(0),
            loom_graph::Label((labels - 1) as u16),
        );
        let grown = sig.with_delta(&delta);
        let diff = grown.difference(&sig).unwrap();
        prop_assert_eq!(diff, delta.to_factor_set());
    }

    /// Every connected subset of every query becomes a trie node, and
    /// all trie links satisfy child = parent + delta.
    #[test]
    fn trie_covers_all_connected_subsets(
        edges in 1usize..6, labels in 1usize..4, seed in any::<u64>()
    ) {
        let p = pattern(edges, labels, seed);
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 19);
        let workload = Workload::new(vec![(p.clone(), 1.0)]);
        let trie = TpsTrie::build(&workload, &rand);
        for mask in connected_edge_subsets(&p) {
            let sig = subset_signature(&p, mask, &rand);
            prop_assert!(
                trie.node_by_signature(&sig).is_some(),
                "subset {mask:b} missing from trie"
            );
        }
        for id in std::iter::once(loom_motif::TrieNodeId::ROOT).chain(trie.node_ids()) {
            let node = trie.node(id);
            for &(delta, child) in &node.children {
                prop_assert_eq!(
                    &node.signature.with_delta(&delta),
                    &trie.node(child).signature
                );
            }
        }
    }

    /// Motif count is monotonically non-increasing in the threshold.
    #[test]
    fn motifs_monotone_in_threshold(
        edges in 1usize..5, labels in 1usize..4, seed in any::<u64>()
    ) {
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 23);
        let workload = Workload::new(vec![
            (pattern(edges, labels, seed), 60.0),
            (pattern(edges, labels, seed.wrapping_add(1)), 40.0),
        ]);
        let trie = TpsTrie::build(&workload, &rand);
        let mut prev = usize::MAX;
        for t in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let n = trie.motifs(t).len();
            prop_assert!(n <= prev);
            prev = n;
        }
    }
}
