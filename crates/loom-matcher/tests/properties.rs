//! Property-based tests of the sliding window and the matcher's
//! structural invariants under random streams — plus the arena
//! refactor's equivalence suite: the zero-clone matcher must produce
//! *exactly* the same match sets as a verbatim copy of the
//! pre-refactor matcher, across window sizes and support thresholds.

use loom_graph::{EdgeId, Label, PatternGraph, StreamEdge, VertexId, Workload};
use loom_matcher::{EdgeFate, MotifMatcher, SlidingWindow};
use loom_motif::{LabelRandomizer, TpsTrie, DEFAULT_PRIME};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;

fn random_stream(n_vertices: usize, n_edges: usize, labels: usize, seed: u64) -> Vec<StreamEdge> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vertex_labels: Vec<Label> = (0..n_vertices)
        .map(|_| Label(rng.gen_range(0..labels) as u16))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut id = 0u32;
    while out.len() < n_edges && seen.len() < n_vertices * (n_vertices - 1) / 2 {
        let u = rng.gen_range(0..n_vertices);
        let v = rng.gen_range(0..n_vertices);
        if u == v || !seen.insert((u.min(v), u.max(v))) {
            continue;
        }
        out.push(StreamEdge {
            id: EdgeId(id),
            src: VertexId(u as u32),
            dst: VertexId(v as u32),
            src_label: vertex_labels[u],
            dst_label: vertex_labels[v],
        });
        id += 1;
    }
    out
}

/// A verbatim copy of the pre-refactor matcher (owned edge vectors,
/// SipHash maps, per-candidate `Delta` computation, clone-based join)
/// kept as the behavioural oracle for the arena refactor. Apart from
/// module-path adjustments this is the code as committed before the
/// interned/arena representation landed.
mod reference {
    use loom_graph::{EdgeId, StreamEdge, VertexId};
    use loom_motif::{edge_delta, single_edge_delta, Delta, LabelRandomizer, MotifId, MotifIndex};
    use std::collections::{HashMap, HashSet};

    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct MatchId(pub u32);

    impl MatchId {
        fn index(self) -> usize {
            self.0 as usize
        }
    }

    #[derive(Clone, Debug)]
    pub struct MotifMatch {
        pub edges: Vec<StreamEdge>,
        pub motif: MotifId,
        pub alive: bool,
    }

    impl MotifMatch {
        pub fn vertices(&self) -> Vec<VertexId> {
            let mut vs: Vec<VertexId> = self.edges.iter().flat_map(|e| [e.src, e.dst]).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        }

        pub fn contains_edge(&self, e: EdgeId) -> bool {
            self.edges.binary_search_by_key(&e, |x| x.id).is_ok()
        }

        pub fn len(&self) -> usize {
            self.edges.len()
        }
    }

    fn fingerprint(motif: MotifId, edges: &[StreamEdge]) -> u128 {
        let mut h: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834;
        h ^= motif.0 as u128;
        for e in edges {
            let mut x = (e.id.0 as u128) + 0x9e37_79b9_7f4a_7c15;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
            x ^= x >> 67;
            h = h.rotate_left(13) ^ x.wrapping_mul(0x2545_f491_4f6c_dd1d_8a5c_d789_635d_2dff);
        }
        h
    }

    #[derive(Clone, Debug, Default)]
    pub struct MatchList {
        arena: Vec<MotifMatch>,
        by_vertex: HashMap<VertexId, Vec<MatchId>>,
        by_edge: HashMap<EdgeId, Vec<MatchId>>,
        dedup: HashSet<u128>,
        live: usize,
    }

    impl MatchList {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn insert(&mut self, mut edges: Vec<StreamEdge>, motif: MotifId) -> Option<MatchId> {
            debug_assert!(!edges.is_empty());
            edges.sort_unstable_by_key(|e| e.id);
            edges.dedup_by_key(|e| e.id);
            if !self.dedup.insert(fingerprint(motif, &edges)) {
                return None;
            }
            let id = MatchId(self.arena.len() as u32);
            let m = MotifMatch {
                edges,
                motif,
                alive: true,
            };
            for v in m.vertices() {
                self.by_vertex.entry(v).or_default().push(id);
            }
            for e in &m.edges {
                self.by_edge.entry(e.id).or_default().push(id);
            }
            self.arena.push(m);
            self.live += 1;
            Some(id)
        }

        pub fn get(&self, id: MatchId) -> &MotifMatch {
            &self.arena[id.index()]
        }

        pub fn matches_at_vertex_pruned(&mut self, v: VertexId) -> Vec<MatchId> {
            let arena = &self.arena;
            let Some(ids) = self.by_vertex.get_mut(&v) else {
                return Vec::new();
            };
            ids.retain(|id| arena[id.index()].alive);
            if ids.is_empty() {
                self.by_vertex.remove(&v);
                return Vec::new();
            }
            ids.clone()
        }

        pub fn matches_at_edge(&self, e: EdgeId) -> Vec<MatchId> {
            self.by_edge
                .get(&e)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.arena[id.index()].alive)
                        .collect()
                })
                .unwrap_or_default()
        }

        pub fn drop_edge(&mut self, e: EdgeId) -> usize {
            let Some(ids) = self.by_edge.remove(&e) else {
                return 0;
            };
            let mut killed = 0;
            for id in ids {
                let m = &mut self.arena[id.index()];
                if m.alive {
                    m.alive = false;
                    self.live -= 1;
                    killed += 1;
                    let fp = fingerprint(m.motif, &m.edges);
                    self.dedup.remove(&fp);
                }
            }
            killed
        }

        pub fn compact(&mut self) {
            let arena = &self.arena;
            self.by_vertex.retain(|_, ids| {
                ids.retain(|id| arena[id.index()].alive);
                !ids.is_empty()
            });
            self.by_edge.retain(|_, ids| {
                ids.retain(|id| arena[id.index()].alive);
                !ids.is_empty()
            });
        }
    }

    const MAX_MATCHES_PER_ENDPOINT: usize = 48;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum EdgeFate {
        Bypass,
        Buffered,
    }

    #[derive(Clone, Debug)]
    pub struct MotifMatcher {
        motifs: MotifIndex,
        rand: LabelRandomizer,
        matches: MatchList,
        ops_since_compact: usize,
    }

    impl MotifMatcher {
        pub fn new(motifs: MotifIndex, rand: LabelRandomizer) -> Self {
            MotifMatcher {
                motifs,
                rand,
                matches: MatchList::new(),
                ops_since_compact: 0,
            }
        }

        pub fn on_edge(&mut self, e: StreamEdge) -> EdgeFate {
            let single = single_edge_delta(&self.rand, e.src_label, e.dst_label);
            let Some(m0) = self.motifs.single_edge_motif(single) else {
                return EdgeFate::Bypass;
            };

            let mut connected = recent(self.matches.matches_at_vertex_pruned(e.src));
            for id in recent(self.matches.matches_at_vertex_pruned(e.dst)) {
                if !connected.contains(&id) {
                    connected.push(id);
                }
            }

            let mut fresh: Vec<MatchId> = Vec::new();
            if let Some(id) = self.matches.insert(vec![e], m0) {
                fresh.push(id);
            }

            let max_edges = self.motifs.max_motif_edges();
            for &id in &connected {
                let m = self.matches.get(id);
                if m.contains_edge(e.id) || m.len() >= max_edges {
                    continue;
                }
                let Some(delta) = extension_delta(&self.rand, &m.edges, &e) else {
                    continue;
                };
                if let Some(child) = self.motifs.child_with_delta(m.motif, delta) {
                    let mut edges = m.edges.clone();
                    edges.push(e);
                    if let Some(nid) = self.matches.insert(edges, child) {
                        fresh.push(nid);
                    }
                }
            }

            let mut partners = recent(self.matches.matches_at_vertex_pruned(e.src));
            for id in recent(self.matches.matches_at_vertex_pruned(e.dst)) {
                if !partners.contains(&id) {
                    partners.push(id);
                }
            }
            let mut produced: Vec<(Vec<StreamEdge>, MotifId)> = Vec::new();
            for &a in &fresh {
                for &b in &partners {
                    if a == b {
                        continue;
                    }
                    let ma = self.matches.get(a);
                    let mb = self.matches.get(b);
                    if ma.len() + mb.len() > max_edges {
                        continue;
                    }
                    let (base, other) = if ma.len() >= mb.len() {
                        (ma, mb)
                    } else {
                        (mb, ma)
                    };
                    if other.edges.iter().any(|x| base.contains_edge(x.id)) {
                        continue;
                    }
                    let mut edges = base.edges.clone();
                    let mut remaining = other.edges.clone();
                    if let Some(motif) = try_join(
                        &self.motifs,
                        &self.rand,
                        &mut edges,
                        base.motif,
                        &mut remaining,
                    ) {
                        produced.push((edges, motif));
                    }
                }
            }
            for (edges, motif) in produced {
                self.matches.insert(edges, motif);
            }

            self.ops_since_compact += 1;
            if self.ops_since_compact >= 1024 {
                self.ops_since_compact = 0;
                self.matches.compact();
            }
            EdgeFate::Buffered
        }

        pub fn matches_for_edge(&self, e: EdgeId) -> Vec<MatchId> {
            self.matches.matches_at_edge(e)
        }

        pub fn get(&self, id: MatchId) -> &MotifMatch {
            self.matches.get(id)
        }

        pub fn on_edge_assigned(&mut self, e: EdgeId) {
            self.matches.drop_edge(e);
        }
    }

    fn recent(mut ids: Vec<MatchId>) -> Vec<MatchId> {
        if ids.len() > MAX_MATCHES_PER_ENDPOINT {
            ids.sort_unstable();
            ids.drain(..ids.len() - MAX_MATCHES_PER_ENDPOINT);
        }
        ids
    }

    fn extension_delta(
        rand: &LabelRandomizer,
        edges: &[StreamEdge],
        e: &StreamEdge,
    ) -> Option<Delta> {
        let du = edges.iter().filter(|x| x.touches(e.src)).count();
        let dv = edges.iter().filter(|x| x.touches(e.dst)).count();
        if !edges.is_empty() && du == 0 && dv == 0 {
            return None;
        }
        Some(edge_delta(rand, e.src_label, du + 1, e.dst_label, dv + 1))
    }

    fn try_join(
        motifs: &MotifIndex,
        rand: &LabelRandomizer,
        edges: &mut Vec<StreamEdge>,
        motif: MotifId,
        remaining: &mut Vec<StreamEdge>,
    ) -> Option<MotifId> {
        if remaining.is_empty() {
            return Some(motif);
        }
        for i in 0..remaining.len() {
            let e2 = remaining[i];
            let Some(delta) = extension_delta(rand, edges, &e2) else {
                continue;
            };
            let Some(child) = motifs.child_with_delta(motif, delta) else {
                continue;
            };
            remaining.remove(i);
            edges.push(e2);
            if let Some(m) = try_join(motifs, rand, edges, child, remaining) {
                return Some(m);
            }
            edges.pop();
            remaining.insert(i, e2);
        }
        None
    }
}

/// One live match, canonically keyed: motif id + sorted edge ids.
type MatchKey = (u32, Vec<u32>);

/// The full live match set of the arena matcher, via the union of
/// per-edge lookups over the live window (every live match has all its
/// edges in the window, so the union is exhaustive).
fn arena_match_set(matcher: &MotifMatcher, window: &SlidingWindow) -> Vec<MatchKey> {
    let mut keys: Vec<MatchKey> = Vec::new();
    for e in window.iter() {
        for id in matcher.matches_for_edge(e.id) {
            let m = matcher.get(id);
            let mut edges: Vec<u32> = m.edges().map(|x| x.id.0).collect();
            edges.sort_unstable();
            keys.push((m.motif().0, edges));
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

/// Same, for the reference matcher.
fn reference_match_set(matcher: &reference::MotifMatcher, window: &SlidingWindow) -> Vec<MatchKey> {
    let mut keys: Vec<MatchKey> = Vec::new();
    for e in window.iter() {
        for id in matcher.matches_for_edge(e.id) {
            let m = matcher.get(id);
            let mut edges: Vec<u32> = m.edges.iter().map(|x| x.id.0).collect();
            edges.sort_unstable();
            keys.push((m.motif.0, edges));
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

/// Workloads with qualitatively different motif shapes for the
/// equivalence sweep: paths (extension-heavy), the 4-path over two
/// labels (join-heavy), and a star (hub-heavy).
fn sweep_workload(which: usize) -> (Workload, usize) {
    let a = Label(0);
    let b = Label(1);
    let c = Label(2);
    match which % 3 {
        0 => (
            Workload::new(vec![
                (PatternGraph::path("p4", vec![a, b, a, b]), 60.0),
                (PatternGraph::path("abc", vec![a, b, c]), 40.0),
            ]),
            3,
        ),
        1 => (
            Workload::new(vec![(PatternGraph::path("q", vec![a, b, a, b]), 1.0)]),
            2,
        ),
        _ => (
            Workload::new(vec![
                (PatternGraph::star("s", a, vec![b, b, b]), 70.0),
                (PatternGraph::path("ab", vec![a, b]), 30.0),
            ]),
            2,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Window: len never exceeds capacity; every evicted edge was the
    /// oldest live edge; degrees stay consistent with content.
    #[test]
    fn window_respects_capacity(
        cap in 1usize..16, n_edges in 1usize..64, seed in any::<u64>()
    ) {
        let edges = random_stream(20, n_edges, 2, seed);
        let mut w = SlidingWindow::new(cap);
        let mut last_evicted: Option<EdgeId> = None;
        for e in &edges {
            if let Some(old) = w.push(*e) {
                if let Some(prev) = last_evicted {
                    prop_assert!(old.id > prev, "evictions in FIFO order");
                }
                last_evicted = Some(old.id);
            }
            prop_assert!(w.len() <= cap);
            // Degree bookkeeping agrees with an independent recount.
            let mut recount: std::collections::HashMap<VertexId, usize> = Default::default();
            for live in w.iter() {
                *recount.entry(live.src).or_default() += 1;
                *recount.entry(live.dst).or_default() += 1;
            }
            for (&v, &d) in &recount {
                prop_assert_eq!(w.degree(v), d);
            }
        }
    }

    /// Matcher: every recorded match's edge multiset is connected, has
    /// no duplicate edges, and its size never exceeds the largest
    /// motif.
    #[test]
    fn matches_are_connected_and_bounded(
        n_edges in 1usize..48, seed in any::<u64>()
    ) {
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 3);
        // Workload whose motifs go up to 3 edges: a-b-a-b path + a-b-c.
        let workload = Workload::new(vec![
            (PatternGraph::path("p4", vec![Label(0), Label(1), Label(0), Label(1)]), 60.0),
            (PatternGraph::path("abc", vec![Label(0), Label(1), Label(2)]), 40.0),
        ]);
        let trie = TpsTrie::build(&workload, &rand);
        let motifs = trie.motifs(0.4);
        let max_edges = motifs.max_motif_edges();
        let mut matcher = MotifMatcher::new(motifs, rand);

        let edges = random_stream(12, n_edges, 3, seed);
        let mut buffered: Vec<StreamEdge> = Vec::new();
        for e in &edges {
            if matcher.on_edge(*e) == EdgeFate::Buffered {
                buffered.push(*e);
            }
        }
        for e in &buffered {
            for id in matcher.matches_for_edge(e.id) {
                let m = matcher.get(id);
                prop_assert!(m.len() <= max_edges, "match larger than any motif");
                // No duplicate edges.
                let mut ids: Vec<_> = m.edges().map(|x| x.id).collect();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), m.len());
                // Connectivity of the match sub-graph.
                let vs = m.vertices();
                let mut reached = vec![false; vs.len()];
                reached[0] = true;
                let mut changed = true;
                while changed {
                    changed = false;
                    for me in m.edges() {
                        let i = vs.iter().position(|&v| v == me.src).unwrap();
                        let j = vs.iter().position(|&v| v == me.dst).unwrap();
                        if reached[i] != reached[j] {
                            reached[i] = true;
                            reached[j] = true;
                            changed = true;
                        }
                    }
                }
                prop_assert!(reached.iter().all(|&r| r), "disconnected match");
            }
        }
    }

    /// Dropping an edge removes every match containing it and nothing
    /// else.
    #[test]
    fn drop_edge_is_exact(n_edges in 2usize..32, seed in any::<u64>()) {
        let rand = LabelRandomizer::new(2, DEFAULT_PRIME, 5);
        let workload = Workload::new(vec![
            (PatternGraph::path("p", vec![Label(0), Label(1), Label(0)]), 1.0),
        ]);
        let trie = TpsTrie::build(&workload, &rand);
        let mut matcher = MotifMatcher::new(trie.motifs(0.4), rand);
        let edges = random_stream(10, n_edges, 2, seed);
        let mut buffered = Vec::new();
        for e in &edges {
            if matcher.on_edge(*e) == EdgeFate::Buffered {
                buffered.push(*e);
            }
        }
        if let Some(victim) = buffered.first() {
            let before: Vec<_> = buffered
                .iter()
                .flat_map(|e| matcher.matches_for_edge(e.id))
                .collect();
            matcher.on_edge_assigned(victim.id);
            for id in before {
                let m = matcher.get(id);
                let contains = m.contains_edge(victim.id);
                prop_assert_eq!(!m.alive(), contains,
                    "liveness must flip exactly for matches containing the victim");
            }
        }
    }

    /// Generational reclamation is behaviour-free: a matcher whose
    /// arena is forcibly compacted on an arbitrary cadence (remapping
    /// every id) produces exactly the same per-edge fates, live match
    /// sets, and recency-capped per-vertex lists as one that never
    /// reclaims — under random streams and window-driven eviction
    /// schedules. This is the contract that lets the id remap run
    /// mid-stream without touching the determinism suite.
    #[test]
    fn arena_reclamation_preserves_matches_and_recency(
        n_edges in 8usize..72,
        window_cap in 2usize..12,
        reclaim_every in 1usize..9,
        workload_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (workload, labels) = sweep_workload(workload_pick);
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 17);
        let trie = TpsTrie::build(&workload, &rand);
        let motifs = trie.motifs(0.4);

        let mut plain = MotifMatcher::new(motifs.clone(), rand.clone());
        let mut reclaiming = MotifMatcher::new(motifs, rand);
        let mut plain_window = SlidingWindow::new(window_cap);
        let mut reclaiming_window = SlidingWindow::new(window_cap);

        let edges = random_stream(14, n_edges, labels, seed);
        for (i, e) in edges.iter().enumerate() {
            let fa = plain.on_edge(*e);
            let fb = reclaiming.on_edge(*e);
            prop_assert_eq!(fa, fb, "edge fate diverged at {:?}", e.id);
            if fa != EdgeFate::Buffered {
                continue;
            }
            if let Some(old) = plain_window.push(*e) {
                plain.on_edge_assigned(old.id);
            }
            if let Some(old) = reclaiming_window.push(*e) {
                reclaiming.on_edge_assigned(old.id);
            }
            if i % reclaim_every == 0 {
                let before = reclaiming.arena_occupancy();
                reclaiming.reclaim_arena();
                let after = reclaiming.arena_occupancy();
                // Reclamation frees every dead slot and bumps the epoch.
                prop_assert_eq!(after.total_matches, after.live_matches);
                prop_assert_eq!(after.live_matches, before.live_matches);
                prop_assert_eq!(after.total_cells, after.live_cells);
                prop_assert_eq!(after.generation, before.generation + 1);
            }
            // Same live match sets...
            prop_assert_eq!(
                arena_match_set(&plain, &plain_window),
                arena_match_set(&reclaiming, &reclaiming_window),
                "live match sets diverged after {:?}", e.id
            );
            // ...and the same recency-capped per-vertex reads (the id
            // values differ after a remap, so compare the *matches*
            // behind them, in order).
            for v in 0..14u32 {
                for cap in [1usize, 3, usize::MAX] {
                    let mut a_ids = Vec::new();
                    let mut b_ids = Vec::new();
                    plain
                        .match_list()
                        .recent_matches_at_vertex_into(VertexId(v), cap, &mut a_ids);
                    reclaiming
                        .match_list()
                        .recent_matches_at_vertex_into(VertexId(v), cap, &mut b_ids);
                    let key = |m: &MotifMatcher, ids: &[loom_matcher::MatchId]| -> Vec<MatchKey> {
                        ids.iter()
                            .map(|&id| {
                                let r = m.get(id);
                                let mut es: Vec<u32> = r.edges().map(|x| x.id.0).collect();
                                es.sort_unstable();
                                (r.motif().0, es)
                            })
                            .collect()
                    };
                    prop_assert_eq!(
                        key(&plain, &a_ids),
                        key(&reclaiming, &b_ids),
                        "recency order diverged at vertex {} cap {}", v, cap
                    );
                }
            }
        }
    }

    /// The arena refactor's behavioural contract: on seeded random
    /// streams with window-driven evictions, the arena-backed matcher
    /// yields exactly the same live match set (edge-id sets + motif
    /// ids) and the same per-edge fates as the verbatim pre-refactor
    /// reference matcher — across window sizes, support thresholds and
    /// motif shapes.
    #[test]
    fn arena_matcher_equals_reference(
        n_edges in 4usize..64,
        window_cap in 2usize..12,
        threshold_pick in 0usize..4,
        workload_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let threshold = [0.3, 0.4, 0.5, 1.0][threshold_pick];
        let (workload, labels) = sweep_workload(workload_pick);
        let rand = LabelRandomizer::new(labels, DEFAULT_PRIME, 11);
        let trie = TpsTrie::build(&workload, &rand);
        let motifs = trie.motifs(threshold);

        let mut arena = MotifMatcher::new(motifs.clone(), rand.clone());
        let mut oracle = reference::MotifMatcher::new(motifs, rand);
        let mut arena_window = SlidingWindow::new(window_cap);
        let mut oracle_window = SlidingWindow::new(window_cap);

        let edges = random_stream(14, n_edges, labels, seed);
        for e in &edges {
            let fa = arena.on_edge(*e);
            let fo = oracle.on_edge(*e);
            prop_assert_eq!(
                fa == EdgeFate::Buffered,
                fo == reference::EdgeFate::Buffered,
                "edge fate diverged at {:?}", e.id
            );
            if fa != EdgeFate::Buffered {
                continue;
            }
            // Same eviction protocol on both sides (the Loom data
            // path: buffer, evict oldest, assign, kill its matches).
            if let Some(old) = arena_window.push(*e) {
                arena.on_edge_assigned(old.id);
            }
            if let Some(old) = oracle_window.push(*e) {
                oracle.on_edge_assigned(old.id);
            }
            prop_assert_eq!(
                arena_match_set(&arena, &arena_window),
                reference_match_set(&oracle, &oracle_window),
                "live match sets diverged after {:?}", e.id
            );
        }
    }
}
