//! Property-based tests of the sliding window and the matcher's
//! structural invariants under random streams.

use loom_graph::{EdgeId, Label, PatternGraph, StreamEdge, VertexId, Workload};
use loom_matcher::{EdgeFate, MotifMatcher, SlidingWindow};
use loom_motif::{LabelRandomizer, TpsTrie, DEFAULT_PRIME};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;

fn random_stream(n_vertices: usize, n_edges: usize, labels: usize, seed: u64) -> Vec<StreamEdge> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vertex_labels: Vec<Label> = (0..n_vertices)
        .map(|_| Label(rng.gen_range(0..labels) as u16))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut id = 0u32;
    while out.len() < n_edges && seen.len() < n_vertices * (n_vertices - 1) / 2 {
        let u = rng.gen_range(0..n_vertices);
        let v = rng.gen_range(0..n_vertices);
        if u == v || !seen.insert((u.min(v), u.max(v))) {
            continue;
        }
        out.push(StreamEdge {
            id: EdgeId(id),
            src: VertexId(u as u32),
            dst: VertexId(v as u32),
            src_label: vertex_labels[u],
            dst_label: vertex_labels[v],
        });
        id += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Window: len never exceeds capacity; every evicted edge was the
    /// oldest live edge; degrees stay consistent with content.
    #[test]
    fn window_respects_capacity(
        cap in 1usize..16, n_edges in 1usize..64, seed in any::<u64>()
    ) {
        let edges = random_stream(20, n_edges, 2, seed);
        let mut w = SlidingWindow::new(cap);
        let mut last_evicted: Option<EdgeId> = None;
        for e in &edges {
            if let Some(old) = w.push(*e) {
                if let Some(prev) = last_evicted {
                    prop_assert!(old.id > prev, "evictions in FIFO order");
                }
                last_evicted = Some(old.id);
            }
            prop_assert!(w.len() <= cap);
            // Degree bookkeeping agrees with an independent recount.
            let mut recount: std::collections::HashMap<VertexId, usize> = Default::default();
            for live in w.iter() {
                *recount.entry(live.src).or_default() += 1;
                *recount.entry(live.dst).or_default() += 1;
            }
            for (&v, &d) in &recount {
                prop_assert_eq!(w.degree(v), d);
            }
        }
    }

    /// Matcher: every recorded match's edge multiset is connected, has
    /// no duplicate edges, and its size never exceeds the largest
    /// motif.
    #[test]
    fn matches_are_connected_and_bounded(
        n_edges in 1usize..48, seed in any::<u64>()
    ) {
        let rand = LabelRandomizer::new(3, DEFAULT_PRIME, 3);
        // Workload whose motifs go up to 3 edges: a-b-a-b path + a-b-c.
        let workload = Workload::new(vec![
            (PatternGraph::path("p4", vec![Label(0), Label(1), Label(0), Label(1)]), 60.0),
            (PatternGraph::path("abc", vec![Label(0), Label(1), Label(2)]), 40.0),
        ]);
        let trie = TpsTrie::build(&workload, &rand);
        let motifs = trie.motifs(0.4);
        let max_edges = motifs.max_motif_edges();
        let mut matcher = MotifMatcher::new(motifs, rand);

        let edges = random_stream(12, n_edges, 3, seed);
        let mut buffered: Vec<StreamEdge> = Vec::new();
        for e in &edges {
            if matcher.on_edge(*e) == EdgeFate::Buffered {
                buffered.push(*e);
            }
        }
        for e in &buffered {
            for id in matcher.matches_for_edge(e.id) {
                let m = matcher.get(id);
                prop_assert!(m.len() <= max_edges, "match larger than any motif");
                // No duplicate edges.
                let mut ids: Vec<_> = m.edges.iter().map(|x| x.id).collect();
                ids.dedup();
                prop_assert_eq!(ids.len(), m.len());
                // Connectivity of the match sub-graph.
                let vs = m.vertices();
                let mut reached = vec![false; vs.len()];
                reached[0] = true;
                let mut changed = true;
                while changed {
                    changed = false;
                    for me in &m.edges {
                        let i = vs.iter().position(|&v| v == me.src).unwrap();
                        let j = vs.iter().position(|&v| v == me.dst).unwrap();
                        if reached[i] != reached[j] {
                            reached[i] = true;
                            reached[j] = true;
                            changed = true;
                        }
                    }
                }
                prop_assert!(reached.iter().all(|&r| r), "disconnected match");
            }
        }
    }

    /// Dropping an edge removes every match containing it and nothing
    /// else.
    #[test]
    fn drop_edge_is_exact(n_edges in 2usize..32, seed in any::<u64>()) {
        let rand = LabelRandomizer::new(2, DEFAULT_PRIME, 5);
        let workload = Workload::new(vec![
            (PatternGraph::path("p", vec![Label(0), Label(1), Label(0)]), 1.0),
        ]);
        let trie = TpsTrie::build(&workload, &rand);
        let mut matcher = MotifMatcher::new(trie.motifs(0.4), rand);
        let edges = random_stream(10, n_edges, 2, seed);
        let mut buffered = Vec::new();
        for e in &edges {
            if matcher.on_edge(*e) == EdgeFate::Buffered {
                buffered.push(*e);
            }
        }
        if let Some(victim) = buffered.first() {
            let before: Vec<_> = buffered
                .iter()
                .flat_map(|e| matcher.matches_for_edge(e.id))
                .collect();
            matcher.on_edge_assigned(victim.id);
            for id in before {
                let m = matcher.get(id);
                let contains = m.contains_edge(victim.id);
                prop_assert_eq!(!m.alive, contains,
                    "liveness must flip exactly for matches containing the victim");
            }
        }
    }
}
