//! The `matchList` map of §3: vertices → motif-matching sub-graphs.
//!
//! Entries take the paper's form `v → {⟨E_i, m_i⟩, ⟨E_j, m_j⟩, ...}`
//! where `E_i` is a set of window edges forming a sub-graph with the
//! same signature as motif `m_i`. New matches never replace old ones
//! (§3); matches die only when one of their edges leaves the window.
//!
//! Storage is a **cell arena**: every match is a cons list of
//! `(parent cell, appended edge)` cells, so extending a k-edge match
//! by one edge allocates exactly one cell — the k existing edges are
//! *shared* with the parent match, never cloned. A join that absorbs
//! `j` edges from a partner pushes `j` cells chained onto the base
//! match's cells. Matches are capped at the largest motif's edge
//! count (single digits, §2.3), so walking a chain is a handful of
//! pointer-free index hops through a dense `Vec`; full edge lists are
//! materialised only when the allocation step consumes a match.
//!
//! Indexes (`by_vertex`, `by_edge`, the dedup set) use FxHash — the
//! fixed-key deterministic hasher from the `rustc-hash` shim — because
//! the matcher probes them several times per arriving edge and SipHash
//! was a measurable share of `on_edge`.

use loom_graph::{EdgeId, StreamEdge, VertexId};
use loom_motif::MotifId;
use rustc_hash::{FxHashMap, FxHashSet};

/// Identifier of a match in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchId(pub u32);

impl MatchId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no parent cell" (the chain root).
const NO_CELL: u32 = u32::MAX;

/// One arena cell: an edge appended to a (possibly empty) parent chain.
#[derive(Clone, Copy, Debug)]
struct Cell {
    parent: u32,
    edge: StreamEdge,
}

/// Per-match metadata. The edges live in the cell chain starting at
/// `cell`; `edge_fp` is the commutative XOR fingerprint of the edge
/// set, maintained incrementally so dedup never materialises a key.
#[derive(Clone, Copy, Debug)]
struct Meta {
    cell: u32,
    motif: MotifId,
    len: u16,
    alive: bool,
    edge_fp: u128,
}

/// Mix one edge id into the 128-bit fingerprint domain. XOR-combining
/// per-edge mixes is order-independent, which is exactly what a
/// set-valued fingerprint needs (matches never hold duplicate edges).
#[inline]
fn mix_edge(e: EdgeId) -> u128 {
    let mut x = (e.0 as u128) + 0x9e37_79b9_7f4a_7c15;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
    x ^= x >> 67;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d_8a5c_d789_635d_2dff)
}

/// Fold the motif id into an edge-set fingerprint: the dedup key is a
/// function of the *(motif, edge set)* pair. Collisions would silently
/// drop a legitimate match; at ~2^-100 for any realistic window
/// population that is far below the signature scheme's own (accepted)
/// false-positive rate.
#[inline]
fn dedup_key(motif: MotifId, edge_fp: u128) -> u128 {
    edge_fp ^ (0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834u128).wrapping_mul(motif.0 as u128 + 1)
}

/// A borrowed view of one match `⟨E_k, m_k⟩` — resolves the cell chain
/// on demand instead of owning an edge vector.
#[derive(Clone, Copy)]
pub struct MatchRef<'a> {
    list: &'a MatchList,
    meta: &'a Meta,
}

impl<'a> MatchRef<'a> {
    /// The motif this sub-graph's signature matched.
    #[inline]
    pub fn motif(&self) -> MotifId {
        self.meta.motif
    }

    /// False once any constituent edge left the window.
    #[inline]
    pub fn alive(&self) -> bool {
        self.meta.alive
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len as usize
    }

    /// Always false — matches have at least one edge.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// Iterate the match's edges (newest appended first).
    pub fn edges(&self) -> impl Iterator<Item = StreamEdge> + 'a {
        let cells = &self.list.cells;
        let mut cur = self.meta.cell;
        std::iter::from_fn(move || {
            if cur == NO_CELL {
                return None;
            }
            let c = &cells[cur as usize];
            cur = c.parent;
            Some(c.edge)
        })
    }

    /// True if the match contains the edge. Chain walk — bounded by
    /// the largest motif's edge count.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges().any(|x| x.id == e)
    }

    /// Distinct vertices of the match, sorted.
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs = Vec::new();
        self.vertices_into(&mut vs);
        vs
    }

    /// Write the distinct vertices of the match (sorted) into `out`,
    /// replacing its contents — the allocation-free variant hot
    /// callers use with a reused buffer.
    pub fn vertices_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.edges().flat_map(|e| [e.src, e.dst]));
        out.sort_unstable();
        out.dedup();
    }

    /// Degrees of two vertices within the match sub-graph, in one
    /// chain walk (the extension step needs both endpoints).
    pub fn degrees(&self, u: VertexId, v: VertexId) -> (usize, usize) {
        let mut du = 0;
        let mut dv = 0;
        for e in self.edges() {
            if e.touches(u) {
                du += 1;
            }
            if e.touches(v) {
                dv += 1;
            }
        }
        (du, dv)
    }

    /// Degree of `v` within the match sub-graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.edges().filter(|e| e.touches(v)).count()
    }
}

/// Cell arena + indices for all live matches in the window.
///
/// Dead matches keep their (small, fixed-size) `Meta` and cells: ids
/// are arena-ordered and the matcher's recency cap *is* id order, so
/// slots are never reused — memory grows with the total number of
/// matches ever recorded, not the live set. That is the same bound
/// the previous owned-`Vec` arena had (at a fraction of the bytes per
/// match); reclaiming it for unbounded service-style streams means a
/// generation/epoch scheme that preserves id ordering, recorded as a
/// ROADMAP open item rather than smuggled into this refactor.
#[derive(Clone, Debug, Default)]
pub struct MatchList {
    cells: Vec<Cell>,
    matches: Vec<Meta>,
    by_vertex: FxHashMap<VertexId, Vec<MatchId>>,
    by_edge: FxHashMap<EdgeId, Vec<MatchId>>,
    dedup: FxHashSet<u128>,
    live: usize,
    /// Scratch for vertex registration (reused across inserts).
    scratch_vertices: Vec<VertexId>,
}

impl MatchList {
    /// An empty match list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live matches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no match is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Register a new match whose chain head is `cell`, indexing it
    /// under its vertices and edges. The caller has already passed
    /// dedup and pushed the cells.
    fn register(&mut self, cell: u32, motif: MotifId, len: u16, edge_fp: u128) -> MatchId {
        let id = MatchId(self.matches.len() as u32);
        // Collect distinct vertices and register edges in one walk.
        let mut scratch = std::mem::take(&mut self.scratch_vertices);
        scratch.clear();
        let mut cur = cell;
        while cur != NO_CELL {
            let c = self.cells[cur as usize];
            scratch.push(c.edge.src);
            scratch.push(c.edge.dst);
            self.by_edge.entry(c.edge.id).or_default().push(id);
            cur = c.parent;
        }
        scratch.sort_unstable();
        scratch.dedup();
        for &v in &scratch {
            self.by_vertex.entry(v).or_default().push(id);
        }
        self.scratch_vertices = scratch;
        self.matches.push(Meta {
            cell,
            motif,
            len,
            alive: true,
            edge_fp,
        });
        self.live += 1;
        id
    }

    /// Insert the single-edge match `⟨{e}, motif⟩`. Returns `None` if
    /// an identical match is already — or was ever — recorded while
    /// its edge was live.
    pub fn insert_single(&mut self, e: StreamEdge, motif: MotifId) -> Option<MatchId> {
        let edge_fp = mix_edge(e.id);
        if !self.dedup.insert(dedup_key(motif, edge_fp)) {
            return None;
        }
        let cell = self.cells.len() as u32;
        self.cells.push(Cell {
            parent: NO_CELL,
            edge: e,
        });
        Some(self.register(cell, motif, 1, edge_fp))
    }

    /// Insert the extension of `parent` by edge `e` as a new match for
    /// `motif` — one arena cell, the parent's edges are shared. The
    /// caller guarantees `e` is not already in `parent`.
    pub fn insert_extension(
        &mut self,
        parent: MatchId,
        e: StreamEdge,
        motif: MotifId,
    ) -> Option<MatchId> {
        let pm = &self.matches[parent.index()];
        debug_assert!(
            !self.get(parent).contains_edge(e.id),
            "extension edge already in parent"
        );
        let edge_fp = pm.edge_fp ^ mix_edge(e.id);
        let (pcell, plen) = (pm.cell, pm.len);
        if !self.dedup.insert(dedup_key(motif, edge_fp)) {
            return None;
        }
        let cell = self.cells.len() as u32;
        self.cells.push(Cell {
            parent: pcell,
            edge: e,
        });
        Some(self.register(cell, motif, plen + 1, edge_fp))
    }

    /// Insert the join of `base` with `absorbed` edges (in absorption
    /// order) as a new match for `motif` — `absorbed.len()` cells
    /// chained onto the base match's shared chain. The caller
    /// guarantees `absorbed` is disjoint from `base`.
    pub fn insert_join(
        &mut self,
        base: MatchId,
        absorbed: &[StreamEdge],
        motif: MotifId,
    ) -> Option<MatchId> {
        debug_assert!(!absorbed.is_empty(), "a join absorbs at least one edge");
        let bm = &self.matches[base.index()];
        let edge_fp = absorbed
            .iter()
            .fold(bm.edge_fp, |acc, e| acc ^ mix_edge(e.id));
        let (mut cell, blen) = (bm.cell, bm.len);
        if !self.dedup.insert(dedup_key(motif, edge_fp)) {
            return None;
        }
        for &e in absorbed {
            let next = self.cells.len() as u32;
            self.cells.push(Cell {
                parent: cell,
                edge: e,
            });
            cell = next;
        }
        Some(self.register(cell, motif, blen + absorbed.len() as u16, edge_fp))
    }

    /// Access a match (dead or alive).
    pub fn get(&self, id: MatchId) -> MatchRef<'_> {
        MatchRef {
            list: self,
            meta: &self.matches[id.index()],
        }
    }

    /// Live matches containing vertex `v` — `matchList(v)` in Alg. 2.
    pub fn matches_at_vertex(&self, v: VertexId) -> Vec<MatchId> {
        self.by_vertex
            .get(&v)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.matches[id.index()].alive)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Append the newest (at most) `cap` live matches at `v` to `out`,
    /// in ascending id order — the capped `matchList(v)` read of the
    /// matcher's hot path.
    ///
    /// The index list is append-ordered (ids only grow), so this walks
    /// it *backwards* and stops as soon as `cap` live entries are
    /// found: at a hub vertex the cost is O(cap + recently-dead), not
    /// O(every match ever recorded at the hub) — the difference
    /// between linear and quadratic total work in hub degree. Dead
    /// entries are left for [`MatchList::compact`] to sweep.
    pub fn recent_matches_at_vertex_into(&self, v: VertexId, cap: usize, out: &mut Vec<MatchId>) {
        let Some(ids) = self.by_vertex.get(&v) else {
            return;
        };
        let start = out.len();
        for &id in ids.iter().rev() {
            if self.matches[id.index()].alive {
                out.push(id);
                if out.len() - start >= cap {
                    break;
                }
            }
        }
        out[start..].reverse();
    }

    /// Live matches containing edge `e` — the `M_e` of §4.
    pub fn matches_at_edge(&self, e: EdgeId) -> Vec<MatchId> {
        let mut out = Vec::new();
        self.matches_at_edge_into(e, &mut out);
        out
    }

    /// Write the live matches containing edge `e` into `out`,
    /// replacing its contents — the allocation-free `M_e` lookup the
    /// allocation step uses with a reused buffer.
    pub fn matches_at_edge_into(&self, e: EdgeId, out: &mut Vec<MatchId>) {
        out.clear();
        if let Some(ids) = self.by_edge.get(&e) {
            out.extend(
                ids.iter()
                    .copied()
                    .filter(|&id| self.matches[id.index()].alive),
            );
        }
    }

    /// Kill every match containing edge `e` (the edge left the window).
    /// Returns the number of matches killed.
    pub fn drop_edge(&mut self, e: EdgeId) -> usize {
        let Some(ids) = self.by_edge.remove(&e) else {
            return 0;
        };
        let mut killed = 0;
        for id in ids {
            let m = &mut self.matches[id.index()];
            if m.alive {
                m.alive = false;
                self.live -= 1;
                killed += 1;
                self.dedup.remove(&dedup_key(m.motif, m.edge_fp));
            }
        }
        killed
    }

    /// Kill a single match by id (equal opportunism drops losing
    /// matches from the map, §4). No-op if already dead.
    pub fn kill(&mut self, id: MatchId) {
        let m = &mut self.matches[id.index()];
        if m.alive {
            m.alive = false;
            self.live -= 1;
            self.dedup.remove(&dedup_key(m.motif, m.edge_fp));
        }
    }

    /// Prune dead entries from the vertex/edge indices. Called
    /// periodically by the matcher; correctness never depends on it
    /// (lookups filter on liveness), only memory usage does.
    pub fn compact(&mut self) {
        let matches = &self.matches;
        self.by_vertex.retain(|_, ids| {
            ids.retain(|id| matches[id.index()].alive);
            !ids.is_empty()
        });
        self.by_edge.retain(|_, ids| {
            ids.retain(|id| matches[id.index()].alive);
            !ids.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    fn se(id: u32, src: u32, dst: u32) -> StreamEdge {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: Label(0),
            dst_label: Label(1),
        }
    }

    #[test]
    fn insert_and_lookup_by_vertex_and_edge() {
        let mut ml = MatchList::new();
        let id = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        assert_eq!(ml.matches_at_vertex(VertexId(1)), vec![id]);
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![id]);
        assert_eq!(ml.matches_at_edge(EdgeId(0)), vec![id]);
        assert!(ml.matches_at_vertex(VertexId(3)).is_empty());
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn extension_shares_parent_edges() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(1)).unwrap();
        assert_eq!(ml.get(b).len(), 2);
        assert!(ml.get(b).contains_edge(EdgeId(0)));
        assert!(ml.get(b).contains_edge(EdgeId(1)));
        assert!(!ml.get(a).contains_edge(EdgeId(1)));
        // One cell per insert: 2 matches, 2 cells total (shared tail).
        assert_eq!(ml.cells.len(), 2);
        // Both matches are indexed under the shared edge.
        assert_eq!(ml.matches_at_edge(EdgeId(0)), vec![a, b]);
        assert_eq!(
            ml.get(b).vertices(),
            vec![VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn join_chains_absorbed_edges() {
        let mut ml = MatchList::new();
        let base = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let j = ml
            .insert_join(base, &[se(1, 2, 3), se(2, 3, 4)], MotifId(2))
            .unwrap();
        assert_eq!(ml.get(j).len(), 3);
        for e in 0..3u32 {
            assert!(ml.get(j).contains_edge(EdgeId(e)));
        }
        // Base untouched; three cells total for base + 2 absorbed.
        assert_eq!(ml.get(base).len(), 1);
        assert_eq!(ml.cells.len(), 3);
    }

    #[test]
    fn duplicate_matches_rejected() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(1)).unwrap();
        let b = ml.insert_single(se(1, 2, 3), MotifId(1)).unwrap();
        assert!(ml.insert_extension(a, se(1, 2, 3), MotifId(1)).is_some());
        // Same edge set {0, 1} reached through the other parent: dup.
        assert!(ml.insert_extension(b, se(0, 1, 2), MotifId(1)).is_none());
        // Same edge set, different motif: distinct entry (Alg. 2 can
        // map one sub-graph to several motifs only via collisions, but
        // the structure must not conflate them).
        assert!(ml.insert_extension(a, se(1, 2, 3), MotifId(2)).is_some());
        assert_eq!(ml.len(), 4);
    }

    #[test]
    fn drop_edge_kills_all_containing_matches() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(1)).unwrap();
        let c = ml.insert_single(se(1, 2, 3), MotifId(0)).unwrap();
        assert_eq!(ml.drop_edge(EdgeId(0)), 2);
        assert!(!ml.get(a).alive());
        assert!(!ml.get(b).alive());
        assert!(ml.get(c).alive());
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![c]);
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn kill_then_reinsert_is_allowed() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        ml.kill(a);
        assert_eq!(ml.len(), 0);
        // The same sub-graph may legitimately reform later in the stream.
        assert!(ml.insert_single(se(0, 1, 2), MotifId(0)).is_some());
    }

    #[test]
    fn match_ref_degree_helpers() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(0)).unwrap();
        let m = ml.get(b);
        assert_eq!(m.vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(m.degree(VertexId(2)), 2);
        assert_eq!(m.degree(VertexId(1)), 1);
        assert_eq!(m.degree(VertexId(9)), 0);
        assert_eq!(m.degrees(VertexId(1), VertexId(2)), (1, 2));
        assert!(m.contains_edge(EdgeId(1)));
        assert!(!m.contains_edge(EdgeId(9)));
    }

    #[test]
    fn recent_lookup_caps_skips_dead_and_appends() {
        let mut ml = MatchList::new();
        let ids: Vec<MatchId> = (0..6)
            .map(|i| ml.insert_single(se(i, 1, 10 + i), MotifId(0)).unwrap())
            .collect();
        ml.kill(ids[5]);
        ml.kill(ids[2]);
        // Newest 3 live at the shared vertex, ascending: 1, 3, 4.
        let mut out = Vec::new();
        ml.recent_matches_at_vertex_into(VertexId(1), 3, &mut out);
        assert_eq!(out, vec![ids[1], ids[3], ids[4]]);
        // Uncapped: all live, ascending.
        out.clear();
        ml.recent_matches_at_vertex_into(VertexId(1), usize::MAX, &mut out);
        assert_eq!(out, vec![ids[0], ids[1], ids[3], ids[4]]);
        // Appending preserves what the caller already collected.
        ml.recent_matches_at_vertex_into(VertexId(11), 8, &mut out);
        assert_eq!(out, vec![ids[0], ids[1], ids[3], ids[4], ids[1]]);
        // Unknown vertex: no-op.
        ml.recent_matches_at_vertex_into(VertexId(99), 8, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn compact_prunes_indices() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        ml.insert_single(se(1, 2, 3), MotifId(0)).unwrap();
        ml.kill(a);
        ml.compact();
        assert!(ml.matches_at_vertex(VertexId(1)).is_empty());
        assert_eq!(ml.matches_at_vertex(VertexId(2)).len(), 1);
    }
}
