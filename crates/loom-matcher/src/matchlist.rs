//! The `matchList` map of §3: vertices → motif-matching sub-graphs.
//!
//! Entries take the paper's form `v → {⟨E_i, m_i⟩, ⟨E_j, m_j⟩, ...}`
//! where `E_i` is a set of window edges forming a sub-graph with the
//! same signature as motif `m_i`. Matches live in an arena and are
//! indexed both by vertex (Alg. 2's lookups) and by edge (the
//! allocation step retrieves `M_e`, all matches containing the edge
//! being evicted). New matches never replace old ones (§3); matches
//! die only when one of their edges leaves the window.

use loom_graph::{EdgeId, StreamEdge, VertexId};
use loom_motif::MotifId;
use std::collections::{HashMap, HashSet};

/// Identifier of a match in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchId(pub u32);

impl MatchId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One motif-matching sub-graph `⟨E_k, m_k⟩`.
#[derive(Clone, Debug)]
pub struct MotifMatch {
    /// The window edges of the match, sorted by edge id.
    pub edges: Vec<StreamEdge>,
    /// The motif this sub-graph's signature matched.
    pub motif: MotifId,
    /// False once any constituent edge left the window.
    pub alive: bool,
}

impl MotifMatch {
    /// Distinct vertices of the match.
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self.edges.iter().flat_map(|e| [e.src, e.dst]).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Degree of `v` within the match sub-graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.edges.iter().filter(|e| e.touches(v)).count()
    }

    /// True if the match contains the edge.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search_by_key(&e, |x| x.id).is_ok()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false — matches have at least one edge.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// 128-bit fingerprint of a (motif, sorted edge set) pair, used for
/// duplicate detection without allocating a key per attempted insert.
/// Collisions would silently drop a legitimate match; at ~2^-100 for
/// any realistic window population that is far below the signature
/// scheme's own (accepted) false-positive rate.
fn fingerprint(motif: MotifId, edges: &[StreamEdge]) -> u128 {
    let mut h: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834;
    h ^= motif.0 as u128;
    for e in edges {
        let mut x = (e.id.0 as u128) + 0x9e37_79b9_7f4a_7c15;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
        x ^= x >> 67;
        h = h.rotate_left(13) ^ x.wrapping_mul(0x2545_f491_4f6c_dd1d_8a5c_d789_635d_2dff);
    }
    h
}

/// Arena + indices for all live matches in the window.
#[derive(Clone, Debug, Default)]
pub struct MatchList {
    arena: Vec<MotifMatch>,
    by_vertex: HashMap<VertexId, Vec<MatchId>>,
    by_edge: HashMap<EdgeId, Vec<MatchId>>,
    dedup: HashSet<u128>,
    live: usize,
}

impl MatchList {
    /// An empty match list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live matches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no match is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a match over `edges` (any order) for `motif`. Returns
    /// `None` if an identical match (same edge set and motif) is
    /// already — or was ever — recorded while those edges were live.
    pub fn insert(&mut self, mut edges: Vec<StreamEdge>, motif: MotifId) -> Option<MatchId> {
        debug_assert!(!edges.is_empty());
        edges.sort_unstable_by_key(|e| e.id);
        edges.dedup_by_key(|e| e.id);
        if !self.dedup.insert(fingerprint(motif, &edges)) {
            return None;
        }
        let id = MatchId(self.arena.len() as u32);
        let m = MotifMatch {
            edges,
            motif,
            alive: true,
        };
        for v in m.vertices() {
            self.by_vertex.entry(v).or_default().push(id);
        }
        for e in &m.edges {
            self.by_edge.entry(e.id).or_default().push(id);
        }
        self.arena.push(m);
        self.live += 1;
        Some(id)
    }

    /// Access a match (dead or alive).
    pub fn get(&self, id: MatchId) -> &MotifMatch {
        &self.arena[id.index()]
    }

    /// Live matches containing vertex `v` — `matchList(v)` in Alg. 2.
    pub fn matches_at_vertex(&self, v: VertexId) -> Vec<MatchId> {
        self.by_vertex
            .get(&v)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.arena[id.index()].alive)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Like [`MatchList::matches_at_vertex`], but prunes dead ids from
    /// the index in the same pass — the matcher's hot path uses this so
    /// hub vertices don't re-scan tombstones on every arriving edge.
    pub fn matches_at_vertex_pruned(&mut self, v: VertexId) -> Vec<MatchId> {
        let arena = &self.arena;
        let Some(ids) = self.by_vertex.get_mut(&v) else {
            return Vec::new();
        };
        ids.retain(|id| arena[id.index()].alive);
        if ids.is_empty() {
            self.by_vertex.remove(&v);
            return Vec::new();
        }
        ids.clone()
    }

    /// Live matches containing edge `e` — the `M_e` of §4.
    pub fn matches_at_edge(&self, e: EdgeId) -> Vec<MatchId> {
        self.by_edge
            .get(&e)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.arena[id.index()].alive)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Kill every match containing edge `e` (the edge left the window).
    /// Returns the number of matches killed.
    pub fn drop_edge(&mut self, e: EdgeId) -> usize {
        let Some(ids) = self.by_edge.remove(&e) else {
            return 0;
        };
        let mut killed = 0;
        for id in ids {
            let m = &mut self.arena[id.index()];
            if m.alive {
                m.alive = false;
                self.live -= 1;
                killed += 1;
                let fp = fingerprint(m.motif, &m.edges);
                self.dedup.remove(&fp);
            }
        }
        killed
    }

    /// Kill a single match by id (equal opportunism drops losing
    /// matches from the map, §4). No-op if already dead.
    pub fn kill(&mut self, id: MatchId) {
        let m = &mut self.arena[id.index()];
        if m.alive {
            m.alive = false;
            self.live -= 1;
            let fp = fingerprint(m.motif, &m.edges);
            self.dedup.remove(&fp);
        }
    }

    /// Prune dead entries from the vertex/edge indices. Called
    /// periodically by the matcher; correctness never depends on it
    /// (lookups filter on liveness), only memory usage does.
    pub fn compact(&mut self) {
        let arena = &self.arena;
        self.by_vertex.retain(|_, ids| {
            ids.retain(|id| arena[id.index()].alive);
            !ids.is_empty()
        });
        self.by_edge.retain(|_, ids| {
            ids.retain(|id| arena[id.index()].alive);
            !ids.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    fn se(id: u32, src: u32, dst: u32) -> StreamEdge {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: Label(0),
            dst_label: Label(1),
        }
    }

    #[test]
    fn insert_and_lookup_by_vertex_and_edge() {
        let mut ml = MatchList::new();
        let id = ml.insert(vec![se(0, 1, 2)], MotifId(0)).unwrap();
        assert_eq!(ml.matches_at_vertex(VertexId(1)), vec![id]);
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![id]);
        assert_eq!(ml.matches_at_edge(EdgeId(0)), vec![id]);
        assert!(ml.matches_at_vertex(VertexId(3)).is_empty());
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn duplicate_matches_rejected() {
        let mut ml = MatchList::new();
        assert!(ml
            .insert(vec![se(0, 1, 2), se(1, 2, 3)], MotifId(1))
            .is_some());
        // Same edges in a different order: still a duplicate.
        assert!(ml
            .insert(vec![se(1, 2, 3), se(0, 1, 2)], MotifId(1))
            .is_none());
        // Same edges, different motif: distinct entry (Alg. 2 can map
        // one sub-graph to several motifs only via collisions, but the
        // structure must not conflate them).
        assert!(ml
            .insert(vec![se(0, 1, 2), se(1, 2, 3)], MotifId(2))
            .is_some());
        assert_eq!(ml.len(), 2);
    }

    #[test]
    fn drop_edge_kills_all_containing_matches() {
        let mut ml = MatchList::new();
        let a = ml.insert(vec![se(0, 1, 2)], MotifId(0)).unwrap();
        let b = ml
            .insert(vec![se(0, 1, 2), se(1, 2, 3)], MotifId(1))
            .unwrap();
        let c = ml.insert(vec![se(1, 2, 3)], MotifId(0)).unwrap();
        assert_eq!(ml.drop_edge(EdgeId(0)), 2);
        assert!(!ml.get(a).alive);
        assert!(!ml.get(b).alive);
        assert!(ml.get(c).alive);
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![c]);
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn kill_then_reinsert_is_allowed() {
        let mut ml = MatchList::new();
        let a = ml.insert(vec![se(0, 1, 2)], MotifId(0)).unwrap();
        ml.kill(a);
        assert_eq!(ml.len(), 0);
        // The same sub-graph may legitimately reform later in the stream.
        assert!(ml.insert(vec![se(0, 1, 2)], MotifId(0)).is_some());
    }

    #[test]
    fn match_vertex_and_degree_helpers() {
        let m = MotifMatch {
            edges: vec![se(0, 1, 2), se(1, 2, 3)],
            motif: MotifId(0),
            alive: true,
        };
        assert_eq!(m.vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(m.degree(VertexId(2)), 2);
        assert_eq!(m.degree(VertexId(1)), 1);
        assert_eq!(m.degree(VertexId(9)), 0);
        assert!(m.contains_edge(EdgeId(1)));
        assert!(!m.contains_edge(EdgeId(9)));
    }

    #[test]
    fn compact_prunes_indices() {
        let mut ml = MatchList::new();
        let a = ml.insert(vec![se(0, 1, 2)], MotifId(0)).unwrap();
        ml.insert(vec![se(1, 2, 3)], MotifId(0)).unwrap();
        ml.kill(a);
        ml.compact();
        assert!(ml.matches_at_vertex(VertexId(1)).is_empty());
        assert_eq!(ml.matches_at_vertex(VertexId(2)).len(), 1);
    }
}
