//! The `matchList` map of §3: vertices → motif-matching sub-graphs.
//!
//! Entries take the paper's form `v → {⟨E_i, m_i⟩, ⟨E_j, m_j⟩, ...}`
//! where `E_i` is a set of window edges forming a sub-graph with the
//! same signature as motif `m_i`. New matches never replace old ones
//! (§3); matches die only when one of their edges leaves the window.
//!
//! Storage is a **cell arena**: every match is a cons list of
//! `(parent cell, appended edge)` cells, so extending a k-edge match
//! by one edge allocates exactly one cell — the k existing edges are
//! *shared* with the parent match, never cloned. A join that absorbs
//! `j` edges from a partner pushes `j` cells chained onto the base
//! match's cells. Matches are capped at the largest motif's edge
//! count (single digits, §2.3), so walking a chain is a handful of
//! pointer-free index hops through a dense `Vec`; full edge lists are
//! materialised only when the allocation step consumes a match.
//!
//! Indexes (`by_vertex`, `by_edge`, the dedup set) use FxHash — the
//! fixed-key deterministic hasher from the `rustc-hash` shim — because
//! the matcher probes them several times per arriving edge and SipHash
//! was a measurable share of `on_edge`.

use loom_graph::{EdgeId, StreamEdge, VertexId};
use loom_motif::MotifId;
use rustc_hash::{FxHashMap, FxHashSet};

/// Identifier of a match in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchId(pub u32);

impl MatchId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no parent cell" (the chain root).
const NO_CELL: u32 = u32::MAX;

/// One arena cell: an edge appended to a (possibly empty) parent chain.
#[derive(Clone, Copy, Debug)]
struct Cell {
    parent: u32,
    edge: StreamEdge,
}

/// Per-match metadata. The edges live in the cell chain starting at
/// `cell`; `edge_fp` is the commutative XOR fingerprint of the edge
/// set, maintained incrementally so dedup never materialises a key.
/// Liveness is *not* here: it lives in the dense parallel
/// `MatchList::live_info` array, because liveness checks run on every
/// index walk and a 4-byte dense read stays in cache where a 32-byte
/// `Meta` load would not.
#[derive(Clone, Copy, Debug)]
struct Meta {
    cell: u32,
    motif: MotifId,
    len: u16,
    edge_fp: u128,
}

/// Mix one edge id into the 128-bit fingerprint domain. XOR-combining
/// per-edge mixes is order-independent, which is exactly what a
/// set-valued fingerprint needs (matches never hold duplicate edges).
#[inline]
fn mix_edge(e: EdgeId) -> u128 {
    let mut x = (e.0 as u128) + 0x9e37_79b9_7f4a_7c15;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
    x ^= x >> 67;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d_8a5c_d789_635d_2dff)
}

/// Pack a live match's `(motif, edge count)` into one dense word for
/// `MatchList::live_info`: motif in the high 24 bits, length in the
/// low 8. Lengths are capped by the largest motif's edge count
/// (single digits, §2.3) and motif ids by the trie population, so
/// neither bound is ever approached in practice.
#[inline]
fn pack_info(motif: MotifId, len: u16) -> u32 {
    debug_assert!(len > 0 && len <= 0xff, "match length {len} out of range");
    debug_assert!(motif.0 < (1 << 24), "motif id {} out of range", motif.0);
    (motif.0 << 8) | len as u32
}

/// Fold the motif id into an edge-set fingerprint: the dedup key is a
/// function of the *(motif, edge set)* pair. Collisions would silently
/// drop a legitimate match; at ~2^-100 for any realistic window
/// population that is far below the signature scheme's own (accepted)
/// false-positive rate.
#[inline]
fn dedup_key(motif: MotifId, edge_fp: u128) -> u128 {
    edge_fp ^ (0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834u128).wrapping_mul(motif.0 as u128 + 1)
}

/// A borrowed view of one match `⟨E_k, m_k⟩` — resolves the cell chain
/// on demand instead of owning an edge vector.
#[derive(Clone, Copy)]
pub struct MatchRef<'a> {
    list: &'a MatchList,
    meta: &'a Meta,
    id: MatchId,
}

impl<'a> MatchRef<'a> {
    /// The motif this sub-graph's signature matched.
    #[inline]
    pub fn motif(&self) -> MotifId {
        self.meta.motif
    }

    /// False once any constituent edge left the window.
    #[inline]
    pub fn alive(&self) -> bool {
        self.list.live_info[self.id.index()] != 0
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len as usize
    }

    /// Always false — matches have at least one edge.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// Iterate the match's edges (newest appended first).
    pub fn edges(&self) -> impl Iterator<Item = StreamEdge> + 'a {
        let cells = &self.list.cells;
        let mut cur = self.meta.cell;
        std::iter::from_fn(move || {
            if cur == NO_CELL {
                return None;
            }
            let c = &cells[cur as usize];
            cur = c.parent;
            Some(c.edge)
        })
    }

    /// True if the match contains the edge. Chain walk — bounded by
    /// the largest motif's edge count.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges().any(|x| x.id == e)
    }

    /// Distinct vertices of the match, sorted.
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs = Vec::new();
        self.vertices_into(&mut vs);
        vs
    }

    /// Write the distinct vertices of the match (sorted) into `out`,
    /// replacing its contents — the allocation-free variant hot
    /// callers use with a reused buffer.
    pub fn vertices_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.edges().flat_map(|e| [e.src, e.dst]));
        out.sort_unstable();
        out.dedup();
    }

    /// Degrees of two vertices within the match sub-graph, in one
    /// chain walk (the extension step needs both endpoints).
    pub fn degrees(&self, u: VertexId, v: VertexId) -> (usize, usize) {
        let mut du = 0;
        let mut dv = 0;
        for e in self.edges() {
            if e.touches(u) {
                du += 1;
            }
            if e.touches(v) {
                dv += 1;
            }
        }
        (du, dv)
    }

    /// Degree of `v` within the match sub-graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.edges().filter(|e| e.touches(v)).count()
    }

    /// Fused extension probe: the degrees of `u` and `v` within the
    /// match, or `None` if the match already contains edge `skip` —
    /// the checks [`MatchRef::contains_edge`] + [`MatchRef::degrees`]
    /// would make, in a single chain walk (the extension step runs
    /// this once per connected match per arriving edge).
    pub fn degrees_unless_contains(
        &self,
        u: VertexId,
        v: VertexId,
        skip: EdgeId,
    ) -> Option<(usize, usize)> {
        let mut du = 0;
        let mut dv = 0;
        for e in self.edges() {
            if e.id == skip {
                return None;
            }
            if e.touches(u) {
                du += 1;
            }
            if e.touches(v) {
                dv += 1;
            }
        }
        Some((du, dv))
    }
}

/// Point-in-time occupancy of the match arena, for observability (the
/// engine surfaces this in `loom stream` snapshots so reclamation is
/// visible, not assumed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaOccupancy {
    /// Matches currently alive (all edges still in the window).
    pub live_matches: usize,
    /// Match slots in the arena, dead ones included.
    pub total_matches: usize,
    /// Cells reachable from a live match (shared tails counted once).
    pub live_cells: usize,
    /// Cells in the arena, unreachable garbage included.
    pub total_cells: usize,
    /// How many generational compactions have run (the epoch).
    pub generation: u64,
}

/// Minimum arena population before a generational compaction is worth
/// the copy (below this the arena is too small to matter).
const RECLAIM_MIN_MATCHES: usize = 4_096;

/// Cell arena + indices for all live matches in the window.
///
/// Dead matches keep their (small, fixed-size) `Meta` and cells until
/// the next **generational compaction** ([`MatchList::reclaim`]):
/// ids are arena-ordered and the matcher's recency cap *is* id order,
/// so slots are never reused in place — instead, when the dead
/// outnumber the living (checked on the matcher's deterministic
/// compaction cadence), the live matches are copied into a fresh
/// arena *in id order* and every index entry is remapped through a
/// dense old→new table. The remap is monotone, so relative id order —
/// the only thing any consumer depends on — survives; resident memory
/// is thereby bounded by the live (window-resident) match population,
/// not by matches-ever-seen, which is what lets `loom stream` run on
/// unbounded sources (DESIGN.md §10).
#[derive(Clone, Debug, Default)]
pub struct MatchList {
    cells: Vec<Cell>,
    matches: Vec<Meta>,
    /// Dense per-vertex match lists (ascending id order), each entry
    /// carrying the vertex's degree *within* that match — matches are
    /// immutable, so the degree recorded at registration stays true
    /// for the match's whole life, and the extension step reads it
    /// straight off the row instead of walking the cell chain. Vertex
    /// ids index directly — the map hashing this replaced was a
    /// measurable share of the per-edge index upkeep; rows grow with
    /// the vertex universe like the partition-side adjacency does.
    /// Edge ids stay hashed ([`MatchList::by_edge`]): only
    /// window-resident edges have entries, so a dense edge table
    /// would grow with the stream.
    by_vertex: Vec<Vec<(MatchId, u8)>>,
    by_edge: FxHashMap<EdgeId, Vec<MatchId>>,
    dedup: FxHashSet<u128>,
    /// Dense per-match liveness, packed `(motif << 8) | edge count`
    /// while alive, 0 once dead. Kept out of `Meta` for cache density
    /// — the backward index walks check liveness far more often than
    /// they read anything else about a match, and the extension loop's
    /// per-candidate motif read rides along in the same 4-byte load
    /// instead of costing a `Meta` cache line.
    live_info: Vec<u32>,
    live: usize,
    /// Completed generational compactions (the arena epoch).
    generation: u64,
    /// Scratch for vertex registration (reused across inserts).
    scratch_vertices: Vec<VertexId>,
    /// Recycled `by_edge` list vecs: every buffered edge creates one
    /// entry and its eviction frees it, so without a pool the steady
    /// state pays a malloc/free pair per edge transit.
    list_pool: Vec<Vec<MatchId>>,
    /// Vertices touched by any mutation since `begin_dirty_epoch` —
    /// the parallel ingest's probe-invalidation set (DESIGN.md §13).
    /// Every probe read is scoped to the probed edge's two endpoints
    /// (their `by_vertex` rows and the matches in them), and every
    /// mutation marks all vertices of the matches it creates or kills,
    /// so "neither endpoint dirty" proves the probe's reads would
    /// re-execute identically. Tracking is off (and the set empty)
    /// outside an epoch, so the sequential path pays nothing.
    dirty: FxHashSet<VertexId>,
    track_dirty: bool,
}

impl MatchList {
    /// An empty match list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live matches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no match is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of dead match slots awaiting compaction.
    pub fn dead(&self) -> usize {
        self.matches.len() - self.live
    }

    /// Edge count of a *live* match, 0 if dead — a dense 4-byte read,
    /// the cheap pre-filter the extension/join loops use before
    /// touching a match's `Meta` or cells.
    #[inline]
    pub fn live_len_of(&self, id: MatchId) -> usize {
        (self.live_info[id.index()] & 0xff) as usize
    }

    /// Motif of a *live* match, off the same dense word
    /// [`MatchList::live_len_of`] reads — undefined (returns motif 0)
    /// for dead matches, so callers must check liveness first.
    #[inline]
    pub fn live_motif_of(&self, id: MatchId) -> MotifId {
        debug_assert!(
            self.live_info[id.index()] != 0,
            "motif read on a dead match"
        );
        MotifId(self.live_info[id.index()] >> 8)
    }

    /// The id the next inserted match will receive — what a read-only
    /// probe predicts fresh ids from (ids are arena-ordered, so every
    /// live id is strictly below this).
    #[inline]
    pub(crate) fn next_id(&self) -> MatchId {
        MatchId(self.matches.len() as u32)
    }

    /// Completed compaction count — probes stamp this and a mismatch
    /// (ids were remapped) invalidates them wholesale.
    #[inline]
    pub(crate) fn arena_generation(&self) -> u64 {
        self.generation
    }

    /// The dedup key `insert_extension(parent, e, motif)` would claim —
    /// lets a read-only probe predict whether the insert will be
    /// accepted without mutating the set.
    #[inline]
    pub(crate) fn extension_key(&self, parent: MatchId, e: EdgeId, motif: MotifId) -> u128 {
        dedup_key(motif, self.matches[parent.index()].edge_fp ^ mix_edge(e))
    }

    /// Whether a dedup key (from [`MatchList::extension_key`]) is
    /// already claimed.
    #[inline]
    pub(crate) fn dedup_contains(&self, key: u128) -> bool {
        self.dedup.contains(&key)
    }

    /// Start tracking mutated vertices (probe invalidation, see the
    /// `dirty` field). Clears any previous epoch's set.
    pub(crate) fn begin_dirty_epoch(&mut self) {
        self.track_dirty = true;
        self.dirty.clear();
    }

    /// Stop tracking and release the dirty set.
    pub(crate) fn end_dirty_epoch(&mut self) {
        self.track_dirty = false;
        self.dirty.clear();
    }

    /// Whether `v` was touched by a mutation in the current epoch.
    #[inline]
    pub(crate) fn vertex_dirty(&self, v: VertexId) -> bool {
        self.dirty.contains(&v)
    }

    /// Mark every vertex of the match rooted at `cell` dirty (the
    /// match was created or killed during a tracking epoch).
    fn mark_chain_dirty(&mut self, cell: u32) {
        let mut cur = cell;
        while cur != NO_CELL {
            let c = self.cells[cur as usize];
            self.dirty.insert(c.edge.src);
            self.dirty.insert(c.edge.dst);
            cur = c.parent;
        }
    }

    /// Register a new match whose chain head is `cell`, indexing it
    /// under its vertices and edges. The caller has already passed
    /// dedup and pushed the cells.
    fn register(&mut self, cell: u32, motif: MotifId, len: u16, edge_fp: u128) -> MatchId {
        let id = MatchId(self.matches.len() as u32);
        // Collect distinct vertices and register edges in one walk.
        let mut scratch = std::mem::take(&mut self.scratch_vertices);
        scratch.clear();
        let mut cur = cell;
        while cur != NO_CELL {
            let c = self.cells[cur as usize];
            // One entry per (edge, touched vertex): a self-loop
            // touches its vertex once, matching `MatchRef::degrees`.
            scratch.push(c.edge.src);
            if c.edge.dst != c.edge.src {
                scratch.push(c.edge.dst);
            }
            match self.by_edge.entry(c.edge.id) {
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().push(id),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    let mut ids = self.list_pool.pop().unwrap_or_default();
                    ids.push(id);
                    slot.insert(ids);
                }
            }
            cur = c.parent;
        }
        // Sorted multiplicities = per-vertex degrees within the match.
        scratch.sort_unstable();
        if let Some(hi) = scratch.last() {
            if self.by_vertex.len() <= hi.index() {
                self.by_vertex.resize_with(hi.index() + 1, Vec::new);
            }
        }
        let live_info = &self.live_info;
        let mut i = 0;
        while i < scratch.len() {
            let v = scratch[i];
            // Run length = this vertex's degree within the match.
            let mut run = i + 1;
            while run < scratch.len() && scratch[run] == v {
                run += 1;
            }
            let deg = (run - i) as u8;
            i = run;
            // Opportunistic row pruning via push_row, amortized O(1)
            // per push. Keeps the dead-entry skip cost of hub-row
            // backward walks bounded by ~2× the live population (this
            // is also what bounds the rows now that compact() never
            // sweeps them). `live_info` predates `id`, and so does
            // every entry already in the row.
            Self::push_row(&mut self.by_vertex[v.index()], live_info, id, deg);
        }
        if self.track_dirty {
            self.dirty.extend(scratch.iter().copied());
        }
        self.scratch_vertices = scratch;
        self.matches.push(Meta {
            cell,
            motif,
            len,
            edge_fp,
        });
        self.live_info.push(pack_info(motif, len));
        self.live += 1;
        id
    }

    /// Amortized per-row index pruning, shared by [`MatchList::register`]
    /// and the single-edge fast path: when a row hits a power-of-two
    /// length ≥ 64, drop its dead entries in place (order-preserving,
    /// so walks see the same live sequence) before appending.
    #[inline]
    fn push_row(row: &mut Vec<(MatchId, u8)>, live_info: &[u32], id: MatchId, deg: u8) {
        if row.len() >= 64 && row.len().is_power_of_two() {
            row.retain(|m| live_info[m.0.index()] != 0);
        }
        row.push((id, deg));
    }

    /// Insert the single-edge match `⟨{e}, motif⟩`. The caller
    /// guarantees `e`'s id is not currently in any live match — stream
    /// edge ids are unique while resident, so a single-edge match
    /// cannot duplicate a live one and singles skip the dedup set
    /// entirely (two hash operations per buffered edge the steady
    /// state never needs). Multi-edge inserts still dedup: the same
    /// union really is reachable through several extension/join
    /// orders.
    ///
    /// Specialized past [`MatchList::register`]: a one-edge chain needs
    /// no walk, no vertex sort and no run-length pass — the index
    /// updates are written out directly (same rows, same order, same
    /// pruning cadence as the generic path would produce). This runs
    /// once per buffered edge, the highest-frequency insert by far.
    pub fn insert_single(&mut self, e: StreamEdge, motif: MotifId) -> Option<MatchId> {
        if self.track_dirty {
            self.dirty.insert(e.src);
            self.dirty.insert(e.dst);
        }
        let edge_fp = mix_edge(e.id);
        let id = MatchId(self.matches.len() as u32);
        let cell = self.cells.len() as u32;
        self.cells.push(Cell {
            parent: NO_CELL,
            edge: e,
        });
        match self.by_edge.entry(e.id) {
            std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().push(id),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let mut ids = self.list_pool.pop().unwrap_or_default();
                ids.push(id);
                slot.insert(ids);
            }
        }
        // Rows in ascending vertex order, exactly as register()'s
        // sorted walk would visit them; a self-loop touches its vertex
        // once (matching `MatchRef::degrees`).
        let (lo, hi) = if e.src <= e.dst {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        if self.by_vertex.len() <= hi.index() {
            self.by_vertex.resize_with(hi.index() + 1, Vec::new);
        }
        Self::push_row(&mut self.by_vertex[lo.index()], &self.live_info, id, 1);
        if lo != hi {
            Self::push_row(&mut self.by_vertex[hi.index()], &self.live_info, id, 1);
        }
        self.matches.push(Meta {
            cell,
            motif,
            len: 1,
            edge_fp,
        });
        self.live_info.push(pack_info(motif, 1));
        self.live += 1;
        Some(id)
    }

    /// Insert the extension of `parent` by edge `e` as a new match for
    /// `motif` — one arena cell, the parent's edges are shared. The
    /// caller guarantees `e` is not already in `parent`.
    pub fn insert_extension(
        &mut self,
        parent: MatchId,
        e: StreamEdge,
        motif: MotifId,
    ) -> Option<MatchId> {
        let pm = &self.matches[parent.index()];
        debug_assert!(
            !self.get(parent).contains_edge(e.id),
            "extension edge already in parent"
        );
        let edge_fp = pm.edge_fp ^ mix_edge(e.id);
        let (pcell, plen) = (pm.cell, pm.len);
        if !self.dedup.insert(dedup_key(motif, edge_fp)) {
            return None;
        }
        let cell = self.cells.len() as u32;
        self.cells.push(Cell {
            parent: pcell,
            edge: e,
        });
        Some(self.register(cell, motif, plen + 1, edge_fp))
    }

    /// Insert the join of `base` with `absorbed` edges (in absorption
    /// order) as a new match for `motif` — `absorbed.len()` cells
    /// chained onto the base match's shared chain. The caller
    /// guarantees `absorbed` is disjoint from `base`.
    pub fn insert_join(
        &mut self,
        base: MatchId,
        absorbed: &[StreamEdge],
        motif: MotifId,
    ) -> Option<MatchId> {
        debug_assert!(!absorbed.is_empty(), "a join absorbs at least one edge");
        let bm = &self.matches[base.index()];
        let edge_fp = absorbed
            .iter()
            .fold(bm.edge_fp, |acc, e| acc ^ mix_edge(e.id));
        let (mut cell, blen) = (bm.cell, bm.len);
        if !self.dedup.insert(dedup_key(motif, edge_fp)) {
            return None;
        }
        for &e in absorbed {
            let next = self.cells.len() as u32;
            self.cells.push(Cell {
                parent: cell,
                edge: e,
            });
            cell = next;
        }
        Some(self.register(cell, motif, blen + absorbed.len() as u16, edge_fp))
    }

    /// Access a match (dead or alive).
    pub fn get(&self, id: MatchId) -> MatchRef<'_> {
        MatchRef {
            list: self,
            meta: &self.matches[id.index()],
            id,
        }
    }

    /// Live matches containing vertex `v` — `matchList(v)` in Alg. 2.
    pub fn matches_at_vertex(&self, v: VertexId) -> Vec<MatchId> {
        self.by_vertex
            .get(v.index())
            .map(|ids| {
                ids.iter()
                    .map(|&(id, _)| id)
                    .filter(|&id| self.live_info[id.index()] != 0)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Append the newest (at most) `cap` live matches at `v` to `out`,
    /// in ascending id order — the capped `matchList(v)` read of the
    /// matcher's hot path.
    ///
    /// The index list is append-ordered (ids only grow), so this walks
    /// it *backwards* and stops as soon as `cap` live entries are
    /// found: at a hub vertex the cost is O(cap + recently-dead), not
    /// O(every match ever recorded at the hub) — the difference
    /// between linear and quadratic total work in hub degree. Dead
    /// entries are left for [`MatchList::compact`] to sweep.
    pub fn recent_matches_at_vertex_into(&self, v: VertexId, cap: usize, out: &mut Vec<MatchId>) {
        let Some(ids) = self.by_vertex.get(v.index()) else {
            return;
        };
        let start = out.len();
        for &(id, _) in ids.iter().rev() {
            if self.live_info[id.index()] != 0 {
                out.push(id);
                if out.len() - start >= cap {
                    break;
                }
            }
        }
        out[start..].reverse();
    }

    /// [`MatchList::recent_matches_at_vertex_into`] carrying each
    /// entry's in-match degree of `v` — the matcher's extension step
    /// reads degrees off the row instead of walking cell chains.
    ///
    /// Returns `true` if the read stopped at `cap` (so live matches at
    /// `v` may exist that are *not* in `out` — the caller must not
    /// conclude "absent ⇒ degree 0" for this vertex).
    pub fn recent_matches_with_degrees_into(
        &self,
        v: VertexId,
        cap: usize,
        out: &mut Vec<(MatchId, u8)>,
    ) -> bool {
        let Some(ids) = self.by_vertex.get(v.index()) else {
            return false;
        };
        let start = out.len();
        let mut truncated = false;
        for &(id, deg) in ids.iter().rev() {
            if self.live_info[id.index()] != 0 {
                out.push((id, deg));
                if out.len() - start >= cap {
                    truncated = true;
                    break;
                }
            }
        }
        out[start..].reverse();
        truncated
    }

    /// Live matches containing edge `e` — the `M_e` of §4.
    pub fn matches_at_edge(&self, e: EdgeId) -> Vec<MatchId> {
        let mut out = Vec::new();
        self.matches_at_edge_into(e, &mut out);
        out
    }

    /// Write the live matches containing edge `e` into `out`,
    /// replacing its contents — the allocation-free `M_e` lookup the
    /// allocation step uses with a reused buffer.
    pub fn matches_at_edge_into(&self, e: EdgeId, out: &mut Vec<MatchId>) {
        out.clear();
        if let Some(ids) = self.by_edge.get(&e) {
            out.extend(
                ids.iter()
                    .copied()
                    .filter(|&id| self.live_info[id.index()] != 0),
            );
        }
    }

    /// Kill every match containing edge `e` (the edge left the window).
    /// Returns the number of matches killed.
    pub fn drop_edge(&mut self, e: EdgeId) -> usize {
        let Some(mut ids) = self.by_edge.remove(&e) else {
            return 0;
        };
        let mut killed = 0;
        for &id in &ids {
            let info = self.live_info[id.index()];
            if info != 0 {
                self.live_info[id.index()] = 0;
                self.live -= 1;
                killed += 1;
                if info & 0xff > 1 {
                    let m = &self.matches[id.index()];
                    self.dedup.remove(&dedup_key(m.motif, m.edge_fp));
                }
                if self.track_dirty {
                    self.mark_chain_dirty(self.matches[id.index()].cell);
                }
            }
        }
        ids.clear();
        self.list_pool.push(ids);
        killed
    }

    /// Kill a single match by id (equal opportunism drops losing
    /// matches from the map, §4). No-op if already dead.
    pub fn kill(&mut self, id: MatchId) {
        let info = self.live_info[id.index()];
        if info != 0 {
            self.live_info[id.index()] = 0;
            self.live -= 1;
            if info & 0xff > 1 {
                let m = &self.matches[id.index()];
                self.dedup.remove(&dedup_key(m.motif, m.edge_fp));
            }
            if self.track_dirty {
                self.mark_chain_dirty(self.matches[id.index()].cell);
            }
        }
    }

    /// Periodic maintenance, called by the matcher on a deterministic
    /// edge-count cadence: run a full generational
    /// [`MatchList::reclaim`] when the dead dominate the arena (and
    /// the arena is big enough to matter). Correctness never depends
    /// on it (lookups filter on liveness), only memory usage does.
    ///
    /// No index sweep happens here: dead index entries are already
    /// bounded without one. `by_vertex` rows prune themselves on the
    /// power-of-two push cadence (see [`MatchList::register`]), so a
    /// row carries at most ~2× its live population; `by_edge` rows
    /// exist only for window-resident edges and vanish whole in
    /// [`MatchList::drop_edge`] when the edge leaves. The global
    /// sweeps this method used to run on every cadence firing were
    /// O(all index entries) of pure overhead on top of those bounds —
    /// and removing them is unobservable, because every read path
    /// filters dead entries out anyway.
    ///
    /// Like [`MatchList::reclaim`], this may invalidate previously
    /// returned [`MatchId`]s — callers must not hold ids across it.
    pub fn compact(&mut self) {
        let dead = self.matches.len() - self.live;
        if self.matches.len() >= RECLAIM_MIN_MATCHES && dead > self.live {
            self.reclaim();
        }
    }

    /// Generational compaction: rebuild the arena from the live
    /// matches only, freeing every dead `Meta` and every unreachable
    /// cell, and remap all index entries through a dense old→new id
    /// table. Live matches are copied in ascending id order, so the
    /// remap is **monotone**: relative id order — which the recency
    /// cap and every index walk depend on — is preserved exactly, and
    /// shared cell tails stay shared (each old cell is copied at most
    /// once). O(live matches + live cells + index entries).
    ///
    /// All previously returned [`MatchId`]s are invalidated.
    pub fn reclaim(&mut self) {
        let old_matches = std::mem::take(&mut self.matches);
        let old_live_info = std::mem::take(&mut self.live_info);
        let old_cells = std::mem::take(&mut self.cells);
        // NO_CELL doubles as the "not copied yet" sentinel: cell ids
        // are always < old_cells.len() < u32::MAX, so no collision.
        let mut cell_remap = vec![NO_CELL; old_cells.len()];
        let mut match_remap = vec![NO_CELL; old_matches.len()];
        self.matches.reserve(self.live);
        let mut stack: Vec<u32> = Vec::new();
        for (old_id, meta) in old_matches.iter().enumerate() {
            if old_live_info[old_id] == 0 {
                continue;
            }
            // Copy the cell chain bottom-up, stopping at the first
            // already-copied cell so shared tails are copied once.
            stack.clear();
            let mut cur = meta.cell;
            while cur != NO_CELL && cell_remap[cur as usize] == NO_CELL {
                stack.push(cur);
                cur = old_cells[cur as usize].parent;
            }
            let mut parent = if cur == NO_CELL {
                NO_CELL
            } else {
                cell_remap[cur as usize]
            };
            for &c in stack.iter().rev() {
                let idx = self.cells.len() as u32;
                self.cells.push(Cell {
                    parent,
                    edge: old_cells[c as usize].edge,
                });
                cell_remap[c as usize] = idx;
                parent = idx;
            }
            match_remap[old_id] = self.matches.len() as u32;
            self.matches.push(Meta {
                cell: parent,
                ..*meta
            });
            self.live_info.push(old_live_info[old_id]);
        }
        debug_assert_eq!(self.matches.len(), self.live);
        // Remap the indices in place; dead ids drop out. The per-list
        // order is preserved and the remap is monotone, so every list
        // stays ascending-by-id (append order).
        for ids in &mut self.by_vertex {
            ids.retain_mut(|entry| {
                let n = match_remap[entry.0.index()];
                entry.0 = MatchId(n);
                n != NO_CELL
            });
        }
        self.by_edge.retain(|_, ids| {
            ids.retain_mut(|id| {
                let n = match_remap[id.index()];
                *id = MatchId(n);
                n != NO_CELL
            });
            !ids.is_empty()
        });
        // The dedup set keys on (motif, edge-set) fingerprints — id
        // free — and already holds live entries only.
        self.generation += 1;
    }

    /// Serialize the arena and its indices for a crash-recovery
    /// checkpoint (DESIGN.md §15). Everything resident is written
    /// *verbatim* — dead matches, dead index entries, cell garbage —
    /// because compaction and row pruning trigger off resident sizes
    /// (arena dead count, power-of-two row lengths): a cleaned reload
    /// would compact at different edges than the uninterrupted run.
    /// The two hash collections are rewritten in sorted order (their
    /// content is deterministic; iteration order is not). Scratch and
    /// the list pool are capacity, not state.
    pub(crate) fn wal_save(&self, w: &mut loom_wal::ByteWriter) {
        w.u64(self.cells.len() as u64);
        for c in &self.cells {
            w.u32(c.parent);
            c.edge.wal_encode(w);
        }
        w.u64(self.matches.len() as u64);
        for m in &self.matches {
            w.u32(m.cell);
            w.u32(m.motif.0);
            w.u16(m.len);
            w.u128(m.edge_fp);
        }
        w.u64(self.by_vertex.len() as u64);
        for row in &self.by_vertex {
            w.u64(row.len() as u64);
            for &(id, deg) in row {
                w.u32(id.0);
                w.u8(deg);
            }
        }
        let mut by_edge: Vec<(EdgeId, &Vec<MatchId>)> =
            self.by_edge.iter().map(|(&e, ids)| (e, ids)).collect();
        by_edge.sort_unstable_by_key(|(e, _)| *e);
        w.u64(by_edge.len() as u64);
        for (e, ids) in by_edge {
            w.u32(e.0);
            w.u64(ids.len() as u64);
            for id in ids {
                w.u32(id.0);
            }
        }
        let mut dedup: Vec<u128> = self.dedup.iter().copied().collect();
        dedup.sort_unstable();
        w.u64(dedup.len() as u64);
        for key in dedup {
            w.u128(key);
        }
        w.u64(self.live_info.len() as u64);
        for &info in &self.live_info {
            w.u32(info);
        }
        w.u64(self.live as u64);
        w.u64(self.generation);
    }

    /// Inverse of [`MatchList::wal_save`], applied to a fresh list.
    pub(crate) fn wal_load(
        &mut self,
        r: &mut loom_wal::ByteReader,
    ) -> Result<(), loom_wal::WalError> {
        use loom_wal::WalError;
        let ncells = r.len_prefix(20)?;
        self.cells = (0..ncells)
            .map(|i| {
                let parent = r.u32()?;
                if parent != NO_CELL && parent as usize >= i {
                    return Err(WalError::Corrupt(format!(
                        "match arena: cell {i} points forward to parent {parent}"
                    )));
                }
                let edge = StreamEdge::wal_decode(r)?;
                Ok(Cell { parent, edge })
            })
            .collect::<Result<_, _>>()?;
        let nmatches = r.len_prefix(30)?;
        self.matches = (0..nmatches)
            .map(|i| {
                let cell = r.u32()?;
                if cell as usize >= ncells {
                    return Err(WalError::Corrupt(format!(
                        "match arena: match {i} roots at cell {cell}, only {ncells} cells"
                    )));
                }
                Ok(Meta {
                    cell,
                    motif: MotifId(r.u32()?),
                    len: r.u16()?,
                    edge_fp: r.u128()?,
                })
            })
            .collect::<Result<_, _>>()?;
        let nrows = r.len_prefix(8)?;
        self.by_vertex = (0..nrows)
            .map(|_| {
                let n = r.len_prefix(5)?;
                (0..n)
                    .map(|_| Ok((MatchId(r.u32()?), r.u8()?)))
                    .collect::<Result<Vec<_>, WalError>>()
            })
            .collect::<Result<_, _>>()?;
        let nedges = r.len_prefix(12)?;
        self.by_edge = FxHashMap::default();
        self.by_edge.reserve(nedges);
        for _ in 0..nedges {
            let e = EdgeId(r.u32()?);
            let n = r.len_prefix(4)?;
            let ids = (0..n)
                .map(|_| r.u32().map(MatchId))
                .collect::<Result<Vec<_>, _>>()?;
            self.by_edge.insert(e, ids);
        }
        let ndedup = r.len_prefix(16)?;
        self.dedup = FxHashSet::default();
        self.dedup.reserve(ndedup);
        for _ in 0..ndedup {
            self.dedup.insert(r.u128()?);
        }
        let ninfo = r.len_prefix(4)?;
        if ninfo != nmatches {
            return Err(WalError::Corrupt(format!(
                "match arena: {ninfo} liveness words for {nmatches} matches"
            )));
        }
        self.live_info = (0..ninfo).map(|_| r.u32()).collect::<Result<_, _>>()?;
        self.live = r.u64()? as usize;
        let alive = self.live_info.iter().filter(|&&i| i != 0).count();
        if alive != self.live {
            return Err(WalError::Corrupt(format!(
                "match arena: live count {} disagrees with {alive} live slots",
                self.live
            )));
        }
        self.generation = r.u64()?;
        Ok(())
    }

    /// Current arena occupancy (live-cell counting walks the live
    /// chains with a visited bitmap — O(total cells) bits + O(live
    /// cells) work, intended for snapshot cadence, not per edge).
    pub fn occupancy(&self) -> ArenaOccupancy {
        let mut visited = vec![false; self.cells.len()];
        let mut live_cells = 0usize;
        for (i, meta) in self.matches.iter().enumerate() {
            if self.live_info[i] == 0 {
                continue;
            }
            let mut cur = meta.cell;
            while cur != NO_CELL && !visited[cur as usize] {
                visited[cur as usize] = true;
                live_cells += 1;
                cur = self.cells[cur as usize].parent;
            }
        }
        ArenaOccupancy {
            live_matches: self.live,
            total_matches: self.matches.len(),
            live_cells,
            total_cells: self.cells.len(),
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    fn se(id: u32, src: u32, dst: u32) -> StreamEdge {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: Label(0),
            dst_label: Label(1),
        }
    }

    #[test]
    fn insert_and_lookup_by_vertex_and_edge() {
        let mut ml = MatchList::new();
        let id = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        assert_eq!(ml.matches_at_vertex(VertexId(1)), vec![id]);
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![id]);
        assert_eq!(ml.matches_at_edge(EdgeId(0)), vec![id]);
        assert!(ml.matches_at_vertex(VertexId(3)).is_empty());
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn extension_shares_parent_edges() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(1)).unwrap();
        assert_eq!(ml.get(b).len(), 2);
        assert!(ml.get(b).contains_edge(EdgeId(0)));
        assert!(ml.get(b).contains_edge(EdgeId(1)));
        assert!(!ml.get(a).contains_edge(EdgeId(1)));
        // One cell per insert: 2 matches, 2 cells total (shared tail).
        assert_eq!(ml.cells.len(), 2);
        // Both matches are indexed under the shared edge.
        assert_eq!(ml.matches_at_edge(EdgeId(0)), vec![a, b]);
        assert_eq!(
            ml.get(b).vertices(),
            vec![VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn join_chains_absorbed_edges() {
        let mut ml = MatchList::new();
        let base = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let j = ml
            .insert_join(base, &[se(1, 2, 3), se(2, 3, 4)], MotifId(2))
            .unwrap();
        assert_eq!(ml.get(j).len(), 3);
        for e in 0..3u32 {
            assert!(ml.get(j).contains_edge(EdgeId(e)));
        }
        // Base untouched; three cells total for base + 2 absorbed.
        assert_eq!(ml.get(base).len(), 1);
        assert_eq!(ml.cells.len(), 3);
    }

    #[test]
    fn duplicate_matches_rejected() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(1)).unwrap();
        let b = ml.insert_single(se(1, 2, 3), MotifId(1)).unwrap();
        assert!(ml.insert_extension(a, se(1, 2, 3), MotifId(1)).is_some());
        // Same edge set {0, 1} reached through the other parent: dup.
        assert!(ml.insert_extension(b, se(0, 1, 2), MotifId(1)).is_none());
        // Same edge set, different motif: distinct entry (Alg. 2 can
        // map one sub-graph to several motifs only via collisions, but
        // the structure must not conflate them).
        assert!(ml.insert_extension(a, se(1, 2, 3), MotifId(2)).is_some());
        assert_eq!(ml.len(), 4);
    }

    #[test]
    fn drop_edge_kills_all_containing_matches() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(1)).unwrap();
        let c = ml.insert_single(se(1, 2, 3), MotifId(0)).unwrap();
        assert_eq!(ml.drop_edge(EdgeId(0)), 2);
        assert!(!ml.get(a).alive());
        assert!(!ml.get(b).alive());
        assert!(ml.get(c).alive());
        assert_eq!(ml.matches_at_vertex(VertexId(2)), vec![c]);
        assert_eq!(ml.len(), 1);
    }

    #[test]
    fn kill_then_reinsert_is_allowed() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        ml.kill(a);
        assert_eq!(ml.len(), 0);
        // The same sub-graph may legitimately reform later in the stream.
        assert!(ml.insert_single(se(0, 1, 2), MotifId(0)).is_some());
    }

    #[test]
    fn match_ref_degree_helpers() {
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        let b = ml.insert_extension(a, se(1, 2, 3), MotifId(0)).unwrap();
        let m = ml.get(b);
        assert_eq!(m.vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(m.degree(VertexId(2)), 2);
        assert_eq!(m.degree(VertexId(1)), 1);
        assert_eq!(m.degree(VertexId(9)), 0);
        assert_eq!(m.degrees(VertexId(1), VertexId(2)), (1, 2));
        assert!(m.contains_edge(EdgeId(1)));
        assert!(!m.contains_edge(EdgeId(9)));
    }

    #[test]
    fn recent_lookup_caps_skips_dead_and_appends() {
        let mut ml = MatchList::new();
        let ids: Vec<MatchId> = (0..6)
            .map(|i| ml.insert_single(se(i, 1, 10 + i), MotifId(0)).unwrap())
            .collect();
        ml.kill(ids[5]);
        ml.kill(ids[2]);
        // Newest 3 live at the shared vertex, ascending: 1, 3, 4.
        let mut out = Vec::new();
        ml.recent_matches_at_vertex_into(VertexId(1), 3, &mut out);
        assert_eq!(out, vec![ids[1], ids[3], ids[4]]);
        // Uncapped: all live, ascending.
        out.clear();
        ml.recent_matches_at_vertex_into(VertexId(1), usize::MAX, &mut out);
        assert_eq!(out, vec![ids[0], ids[1], ids[3], ids[4]]);
        // Appending preserves what the caller already collected.
        ml.recent_matches_at_vertex_into(VertexId(11), 8, &mut out);
        assert_eq!(out, vec![ids[0], ids[1], ids[3], ids[4], ids[1]]);
        // Unknown vertex: no-op.
        ml.recent_matches_at_vertex_into(VertexId(99), 8, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn compact_leaves_queries_clean_without_a_sweep() {
        // compact() no longer sweeps the indices below the reclaim
        // threshold — every read path must still filter dead entries
        // on its own.
        let mut ml = MatchList::new();
        let a = ml.insert_single(se(0, 1, 2), MotifId(0)).unwrap();
        ml.insert_single(se(1, 2, 3), MotifId(0)).unwrap();
        ml.kill(a);
        ml.compact();
        assert_eq!(ml.generation, 0, "tiny arena: no reclaim");
        assert!(ml.matches_at_vertex(VertexId(1)).is_empty());
        assert_eq!(ml.matches_at_vertex(VertexId(2)).len(), 1);
        let mut out = Vec::new();
        ml.matches_at_edge_into(EdgeId(0), &mut out);
        assert!(out.is_empty(), "dead match filtered from by_edge reads");
    }

    #[test]
    fn register_prunes_hub_rows_on_the_push_cadence() {
        // The per-row amortized pruning is what bounds by_vertex rows
        // now that compact() never sweeps them: kill everything at a
        // hub, keep inserting, and the row must stay ~2× live instead
        // of growing with matches-ever.
        let mut ml = MatchList::new();
        for i in 0..4_000u32 {
            let id = ml.insert_single(se(i, 1, 10 + i), MotifId(0)).unwrap();
            ml.kill(id);
        }
        assert_eq!(ml.len(), 0);
        let row_len = ml.by_vertex[1].len();
        assert!(
            row_len <= 2_048,
            "hub row grew unboundedly: {row_len} entries for 0 live matches"
        );
    }
}
