//! # loom-matcher
//!
//! The streaming half of Loom's motif machinery (§3): the sliding
//! window `Ptemp` over the edge stream, the `matchList` map from
//! vertices/edges to motif-matching sub-graphs, and the Alg. 2 matcher
//! that grows matches by trie-guided extension and join as edges
//! arrive. The allocation step (`loom-partition`) consumes matches as
//! edges fall out of the window.

#![warn(missing_docs)]

pub mod matcher;
pub mod matchlist;
pub mod window;

pub use matcher::{EdgeFate, MotifMatcher};
pub use matchlist::{MatchId, MatchList, MotifMatch};
pub use window::SlidingWindow;
