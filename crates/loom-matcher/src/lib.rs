//! # loom-matcher
//!
//! The streaming half of Loom's motif machinery (§3): the sliding
//! window `Ptemp` over the edge stream, the `matchList` map from
//! vertices/edges to motif-matching sub-graphs, and the Alg. 2 matcher
//! that grows matches by trie-guided extension and join as edges
//! arrive. The allocation step (`loom-partition`) consumes matches as
//! edges fall out of the window.
//!
//! Matches are stored in a cell arena ([`matchlist`]): a match is a
//! `(parent, appended edge)` cons chain, so the steady-state `on_edge`
//! path never clones an edge vector — extension and join allocate O(1)
//! cells and edge lists materialise only when allocation consumes a
//! match (via [`MatchRef`]).

#![warn(missing_docs)]

pub mod matcher;
pub mod matchlist;
pub mod window;

pub use matcher::{EdgeFate, EdgeProbe, MotifMatcher, MAX_MATCHES_PER_ENDPOINT};
pub use matchlist::{ArenaOccupancy, MatchId, MatchList, MatchRef};
pub use window::SlidingWindow;
