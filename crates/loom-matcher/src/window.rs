//! The sliding window `Ptemp` over the graph stream (§3).
//!
//! Loom buffers the most recent `t` edges; sub-graphs forming inside
//! the window are matched against motifs, and edges leaving the window
//! are permanently assigned. The window doubles as a temporary
//! partition so queries can reach not-yet-assigned data (§3) — the
//! partition state in `loom-partition` models that by treating
//! unassigned vertices with window presence as residents of `Ptemp`.

use loom_graph::{EdgeId, StreamEdge, VertexId};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// A fixed-capacity FIFO of stream edges with O(1) membership checks.
///
/// Per-vertex degrees are computed on demand by scanning the live
/// edges: nothing on the per-edge hot path reads them, and the
/// incremental map the window used to carry cost four hash-map
/// updates per buffered edge transit for observability-only data.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    capacity: usize,
    edges: VecDeque<StreamEdge>,
    present: FxHashSet<EdgeId>,
}

impl SlidingWindow {
    /// A window holding at most `capacity` edges (the paper's default
    /// for evaluation is 10k, §5.1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            edges: VecDeque::with_capacity(capacity + 1),
            present: FxHashSet::with_capacity_and_hasher(capacity + 1, Default::default()),
        }
    }

    /// The configured capacity `t`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live edges currently buffered (tombstones excluded).
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when no live edges are buffered.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// True when the window is at capacity (the next push evicts).
    pub fn is_full(&self) -> bool {
        self.present.len() >= self.capacity
    }

    /// True if the edge is currently in the window.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present.contains(&e)
    }

    /// Degree of `v` counting only window edges (0 if absent). O(live
    /// edges) — an observability read, not a hot-path one.
    pub fn degree(&self, v: VertexId) -> usize {
        self.iter().filter(|e| e.touches(v)).count()
    }

    /// True if any window edge touches `v` — i.e. `v` is visible in the
    /// temporary partition. O(live edges), like [`SlidingWindow::degree`].
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.iter().any(|e| e.touches(v))
    }

    /// Buffer a new edge. If the window was full, the oldest edge is
    /// evicted and returned — the caller must then assign it (§4).
    pub fn push(&mut self, e: StreamEdge) -> Option<StreamEdge> {
        debug_assert!(!self.present.contains(&e.id), "duplicate edge {:?}", e.id);
        self.edges.push_back(e);
        self.present.insert(e.id);
        if self.present.len() > self.capacity {
            self.pop_oldest()
        } else {
            None
        }
    }

    /// Remove and return the oldest edge still present.
    pub fn pop_oldest(&mut self) -> Option<StreamEdge> {
        while let Some(e) = self.edges.pop_front() {
            if self.present.remove(&e.id) {
                return Some(e);
            }
            // Edge was removed out-of-band (assigned as part of a motif
            // match); skip the tombstone.
        }
        None
    }

    /// Remove an edge out of FIFO order (when a motif match containing
    /// it wins an allocation). The queue keeps a tombstone that
    /// [`SlidingWindow::pop_oldest`] skips.
    ///
    /// Returns true if the edge was present.
    pub fn remove(&mut self, e: &StreamEdge) -> bool {
        self.present.remove(&e.id)
    }

    /// Drain every remaining edge in arrival order (end-of-stream flush).
    pub fn drain(&mut self) -> Vec<StreamEdge> {
        let mut out = Vec::with_capacity(self.present.len());
        while let Some(e) = self.pop_oldest() {
            out.push(e);
        }
        out
    }

    /// Iterate over live edges in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamEdge> {
        self.edges.iter().filter(|e| self.present.contains(&e.id))
    }

    /// Serialize the window for a crash-recovery checkpoint (DESIGN.md
    /// §15). The queue is written *verbatim, tombstones included*:
    /// eviction fires on the live count but pop order walks the raw
    /// queue, so a tombstone-stripped reload would be observationally
    /// identical — the verbatim form is kept because the saved bytes
    /// double as a deep-equality digest in the recovery tests.
    /// `present` is rewritten sorted (hash-set iteration order is not
    /// deterministic; its *content* is). Capacity is config.
    pub fn wal_save(&self, w: &mut loom_wal::ByteWriter) {
        w.u64(self.edges.len() as u64);
        for e in &self.edges {
            e.wal_encode(w);
        }
        let mut present: Vec<u32> = self.present.iter().map(|id| id.0).collect();
        present.sort_unstable();
        w.u64(present.len() as u64);
        for id in present {
            w.u32(id);
        }
    }

    /// Inverse of [`SlidingWindow::wal_save`], applied to a freshly
    /// constructed window of the same capacity.
    pub fn wal_load(&mut self, r: &mut loom_wal::ByteReader) -> Result<(), loom_wal::WalError> {
        let n = r.len_prefix(16)?;
        self.edges = (0..n)
            .map(|_| StreamEdge::wal_decode(r))
            .collect::<Result<_, _>>()?;
        let np = r.len_prefix(4)?;
        if np > n {
            return Err(loom_wal::WalError::Corrupt(format!(
                "sliding window: {np} live edges in a queue of {n}"
            )));
        }
        self.present = (0..np)
            .map(|_| r.u32().map(EdgeId))
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;

    fn se(id: u32, src: u32, dst: u32) -> StreamEdge {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: Label(0),
            dst_label: Label(1),
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut w = SlidingWindow::new(2);
        assert!(w.push(se(0, 0, 1)).is_none());
        assert!(w.push(se(1, 1, 2)).is_none());
        assert!(w.is_full());
        let evicted = w.push(se(2, 2, 3)).expect("oldest evicted");
        assert_eq!(evicted.id, EdgeId(0));
        assert_eq!(w.len(), 2);
        assert!(!w.contains(EdgeId(0)));
        assert!(w.contains(EdgeId(2)));
    }

    #[test]
    fn degrees_track_window_content() {
        let mut w = SlidingWindow::new(10);
        w.push(se(0, 0, 1));
        w.push(se(1, 1, 2));
        assert_eq!(w.degree(VertexId(1)), 2);
        assert_eq!(w.degree(VertexId(0)), 1);
        assert_eq!(w.degree(VertexId(9)), 0);
        assert!(w.contains_vertex(VertexId(2)));
        assert!(!w.contains_vertex(VertexId(9)));
    }

    #[test]
    fn out_of_band_removal_leaves_tombstone() {
        let mut w = SlidingWindow::new(3);
        let e0 = se(0, 0, 1);
        let e1 = se(1, 1, 2);
        w.push(e0);
        w.push(e1);
        assert!(w.remove(&e0));
        assert!(!w.remove(&e0), "double remove is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(w.degree(VertexId(1)), 1);
        // pop skips the tombstone and yields e1.
        assert_eq!(w.pop_oldest().unwrap().id, EdgeId(1));
        assert!(w.is_empty());
    }

    #[test]
    fn drain_returns_arrival_order() {
        let mut w = SlidingWindow::new(5);
        for i in 0..4 {
            w.push(se(i, i, i + 1));
        }
        let e2 = se(2, 2, 3);
        w.remove(&e2);
        let drained: Vec<u32> = w.drain().iter().map(|e| e.id.0).collect();
        assert_eq!(drained, vec![0, 1, 3]);
        assert!(w.is_empty());
        assert_eq!(w.degree(VertexId(1)), 0);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut w = SlidingWindow::new(5);
        for i in 0..3 {
            w.push(se(i, i, i + 1));
        }
        w.remove(&se(1, 1, 2));
        let ids: Vec<u32> = w.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        SlidingWindow::new(0);
    }

    #[test]
    fn len_excludes_tombstones() {
        let mut w = SlidingWindow::new(4);
        for i in 0..4 {
            w.push(se(i, 0, i + 1));
        }
        w.remove(&se(0, 0, 1));
        w.remove(&se(1, 0, 2));
        assert_eq!(w.len(), 2);
        // Pushing two more should not evict (two tombstones absorb it)...
        // capacity counts live edges only.
        assert!(w.push(se(4, 0, 5)).is_none());
        assert!(w.push(se(5, 0, 6)).is_none());
        assert!(w.push(se(6, 0, 7)).is_some());
    }
}
