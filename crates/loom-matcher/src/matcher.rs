//! Streaming motif matching — Alg. 2 of §3.
//!
//! Every arriving edge is first checked against the single-edge motifs
//! at the TPSTry++ root; an edge matching none can never participate in
//! a motif match (support anti-monotonicity) and bypasses the window
//! entirely. A matching edge is buffered and the match list is grown
//! two ways, exactly as Alg. 2 does:
//!
//! 1. **extension** — each existing match connected to the new edge is
//!    extended by it when the motif node has a child whose delta
//!    factors equal the factors the edge would add;
//! 2. **join** — each *new* match (the single edge, or an extension
//!    produced in step 1) is recursively merged with existing matches
//!    at the edge's endpoints, absorbing the smaller match's edges one
//!    at a time down the trie (the paper's `corecurse`).
//!
//! Signatures are never recomputed — and since the interning refactor,
//! neither are [`loom_motif::Delta`]s: every candidate edge addition
//! resolves through the [`DeltaLut`] to a dense [`loom_motif::DeltaId`]
//! and one flat-table child lookup. The steady-state `on_edge` path
//! performs no edge-vector clone: extension and join push O(1) arena
//! cells (see [`crate::matchlist`]), and all per-edge working sets live
//! in scratch buffers reused across calls.

use crate::matchlist::{MatchId, MatchList, MatchRef};
use loom_graph::{EdgeId, StreamEdge, VertexId};
use loom_motif::{DeltaLut, LabelRandomizer, MotifId, MotifIndex};

/// What happened to an edge handed to [`MotifMatcher::on_edge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeFate {
    /// The edge matches no single-edge motif: assign it immediately and
    /// do not buffer it (§3 — it "behaves as if the edge was never
    /// added to the window").
    Bypass,
    /// The edge matched at least a single-edge motif and was recorded
    /// in the match list; buffer it in the window.
    Buffered,
}

/// Default cap on how many existing matches the extension and join
/// steps consider per endpoint of a new edge. Hub vertices (a paper
/// with hundreds of authors, a genre with thousands of artists) can
/// accumulate enormous `matchList` entries; scanning them all per
/// arriving edge makes the matcher quadratic in hub degree for no
/// quality gain — the matches skipped are the *oldest* at the hub,
/// which are about to leave the window anyway. The paper does not
/// discuss this case; the cap is our bounded-work deviation (see
/// DESIGN.md §5, with the sweep data justifying the value) and keeps
/// Loom's slowdown factor in Table 2's 1.5-7x band. Override per
/// matcher with [`MotifMatcher::set_match_cap`].
pub const MAX_MATCHES_PER_ENDPOINT: usize = 48;

/// Where a planned join's base match comes from (see [`EdgeProbe`]).
#[derive(Clone, Copy, Debug)]
enum BaseRef {
    /// An existing (pre-edge) match, by id.
    Old(MatchId),
    /// The `i`-th match the probed edge is predicted to create — an
    /// index into the apply stage's fresh list (0 is the single-edge
    /// match, then accepted extensions in candidate order), *not* an
    /// arena id: commits of earlier batch edges may have grown the
    /// arena since the probe, so absolute predicted ids would be stale
    /// while indices stay exact.
    Fresh(u32),
}

/// One planned join: absorb `len` edges of the probe's pool starting
/// at `start` into `base`, yielding `motif`.
#[derive(Clone, Copy, Debug)]
struct JoinPlan {
    base: BaseRef,
    start: u32,
    len: u16,
    motif: MotifId,
}

/// The read-only half of one edge's matcher work: everything
/// [`MotifMatcher::on_edge_classified`] decides *before* its first
/// state mutation, captured as a plan that
/// [`MotifMatcher::apply_probe`] executes verbatim.
///
/// This is the parallel ingest's unit of fan-out (DESIGN.md §13):
/// [`MotifMatcher::probe_classified`] takes `&self`, so a worker pool
/// can probe many edges of a batch concurrently against the immutable
/// pre-batch match list, and the sequential commit stage applies the
/// plans in arrival order. The sequential path runs the *same*
/// probe-then-apply split (there is one implementation, not two), so
/// a committed stale-free probe is bit-identical to sequential
/// processing by construction.
///
/// Internals are private: a probe is only meaningful for the exact
/// `(matcher state, edge)` it was computed against, as checked by
/// [`MotifMatcher::probe_is_valid`].
#[derive(Clone, Debug)]
pub struct EdgeProbe {
    /// Arena generation at probe time — compaction remaps ids and
    /// invalidates every outstanding probe.
    generation: u64,
    /// The single-edge motif the probed edge classified to.
    m0: MotifId,
    /// All extension candidates that passed the LUT/child checks, in
    /// connected-match order: `(parent, child motif)`. Dedup is NOT
    /// pre-resolved here — apply calls the real `insert_extension`,
    /// whose dedup check is its first action, so a rejected candidate
    /// has zero state effect either way.
    extensions: Vec<(MatchId, MotifId)>,
    /// Planned joins, in discovery order.
    joins: Vec<JoinPlan>,
    /// Absorbed-edge storage for `joins` (in absorption order).
    join_pool: Vec<StreamEdge>,
    // Probe-internal working sets, kept to reuse their allocations
    // across probes (one EdgeProbe lives per batch slot).
    src_list: Vec<(MatchId, u8)>,
    dst_list: Vec<(MatchId, u8)>,
    connected: Vec<(MatchId, u8, u8)>,
    partners: Vec<MatchId>,
    /// Predicted fresh ids (absolute, valid only at probe time — used
    /// for partner-list ordering, never stored into plans).
    fresh_ids: Vec<MatchId>,
    /// Per predicted fresh match: `(edge count, motif, extension
    /// parent)` — `None` parent is the single-edge match.
    fresh_meta: Vec<(u16, MotifId, Option<MatchId>)>,
    /// Dedup keys this edge's earlier predicted inserts claimed —
    /// simulates within-edge dedup exactly (the global set is only
    /// consulted, never written, by a probe).
    predicted_keys: Vec<u128>,
    a_edges: Vec<StreamEdge>,
    join_edges: Vec<StreamEdge>,
    join_remaining: Vec<StreamEdge>,
}

impl Default for EdgeProbe {
    fn default() -> Self {
        EdgeProbe {
            generation: 0,
            m0: MotifId(0),
            extensions: Vec::new(),
            joins: Vec::new(),
            join_pool: Vec::new(),
            src_list: Vec::new(),
            dst_list: Vec::new(),
            connected: Vec::new(),
            partners: Vec::new(),
            fresh_ids: Vec::new(),
            fresh_meta: Vec::new(),
            predicted_keys: Vec::new(),
            a_edges: Vec::new(),
            join_edges: Vec::new(),
            join_remaining: Vec::new(),
        }
    }
}

/// `MatchRef::degrees_unless_contains` over a *predicted* (not yet
/// inserted) match's edge list.
fn virtual_degrees_unless_contains(
    edges: &[StreamEdge],
    u: VertexId,
    v: VertexId,
    skip: EdgeId,
) -> Option<(usize, usize)> {
    let mut du = 0;
    let mut dv = 0;
    for e in edges {
        if e.id == skip {
            return None;
        }
        if e.touches(u) {
            du += 1;
        }
        if e.touches(v) {
            dv += 1;
        }
    }
    Some((du, dv))
}

/// The streaming motif matcher: match list plus the motif index and the
/// delta lookup tables the whole run shares.
#[derive(Clone, Debug)]
pub struct MotifMatcher {
    motifs: MotifIndex,
    lut: DeltaLut,
    matches: MatchList,
    // Dense motif-id → support table: the allocation step reads one
    // support per candidate match, and an 8-byte indexed load beats
    // chasing into the trie's `Motif` structs.
    supports: Vec<f64>,
    match_cap: usize,
    dead_at_last_compact: usize,
    // Scratch reused across calls so the steady state allocates
    // nothing beyond arena cells and index growth: the probe plan the
    // sequential path reuses, and the apply stage's fresh-id list.
    probe_scratch: EdgeProbe,
    scratch_fresh: Vec<MatchId>,
}

impl MotifMatcher {
    /// Build a matcher over a motif index, precomputing the dense
    /// label/degree → delta tables from the run's randomizer.
    pub fn new(motifs: MotifIndex, rand: LabelRandomizer) -> Self {
        let lut = DeltaLut::build(&motifs, &rand);
        let supports = (0..motifs.len())
            .map(|i| motifs.get(MotifId(i as u32)).support)
            .collect();
        MotifMatcher {
            motifs,
            lut,
            matches: MatchList::new(),
            supports,
            match_cap: MAX_MATCHES_PER_ENDPOINT,
            dead_at_last_compact: 0,
            probe_scratch: EdgeProbe::default(),
            scratch_fresh: Vec::new(),
        }
    }

    /// The motif index this matcher hunts for.
    pub fn motifs(&self) -> &MotifIndex {
        &self.motifs
    }

    /// Read access to the match list (allocation consumes it).
    pub fn match_list(&self) -> &MatchList {
        &self.matches
    }

    /// The per-endpoint match cap currently in force.
    pub fn match_cap(&self) -> usize {
        self.match_cap
    }

    /// Override the per-endpoint match cap (`usize::MAX` = unbounded).
    /// Default is [`MAX_MATCHES_PER_ENDPOINT`]; the loom-bench cap
    /// sweep uses this to quantify the deviation.
    pub fn set_match_cap(&mut self, cap: usize) {
        assert!(cap > 0, "a zero cap would disable matching entirely");
        self.match_cap = cap;
    }

    /// The newest `cap` entries of `old ++ fresh` appended to `out`,
    /// skipping entries already present in `out[..dedup_prefix]` — the
    /// join step's partner-list reconstruction (see `on_edge`). Pass
    /// `dedup_prefix = 0` for the first endpoint (nothing to dedup
    /// against). Both the appended sequence and `out[..dedup_prefix]`
    /// are ascending by id, so the dedup is a two-pointer merge, not a
    /// quadratic scan.
    fn append_capped_tail(
        out: &mut Vec<MatchId>,
        old: &[(MatchId, u8)],
        fresh: &[MatchId],
        cap: usize,
        dedup_prefix: usize,
    ) {
        let skip = (old.len() + fresh.len()).saturating_sub(cap);
        let (old_part, fresh_part) = if skip <= old.len() {
            (&old[skip..], fresh)
        } else {
            (&[][..], &fresh[skip - old.len()..])
        };
        let mut pi = 0;
        for id in old_part
            .iter()
            .map(|&(id, _)| id)
            .chain(fresh_part.iter().copied())
        {
            while pi < dedup_prefix && out[pi] < id {
                pi += 1;
            }
            if pi < dedup_prefix && out[pi] == id {
                continue;
            }
            out.push(id);
        }
    }

    /// Classify an edge against the single-edge motif gate: the motif
    /// its buffered processing starts from, or `None` for a bypass.
    /// This is a *pure* function of the immutable LUT/motif tables —
    /// no matcher state — which is what lets the batched ingest path
    /// pre-classify a whole batch up front (the probes share the hot
    /// LUT rows) and stay bit-identical to edge-at-a-time processing.
    #[inline]
    pub fn classify(&self, e: &StreamEdge) -> Option<MotifId> {
        let single = self.lut.delta_id(e.src_label, 1, e.dst_label, 1)?;
        self.motifs.single_edge_motif_by_id(single)
    }

    /// Process a new stream edge (Alg. 2's outer loop body).
    pub fn on_edge(&mut self, e: StreamEdge) -> EdgeFate {
        match self.classify(&e) {
            None => EdgeFate::Bypass,
            Some(m0) => self.on_edge_classified(e, m0),
        }
    }

    /// [`MotifMatcher::on_edge`] with the single-edge gate already
    /// resolved by [`MotifMatcher::classify`]. Callers must pass the
    /// `m0` classify returned for *this* edge.
    ///
    /// Implemented as probe-then-apply — the sequential path and the
    /// parallel ingest's commit stage run the exact same split, so
    /// their bit-identity is structural, not coincidental.
    pub fn on_edge_classified(&mut self, e: StreamEdge, m0: MotifId) -> EdgeFate {
        let mut probe = std::mem::take(&mut self.probe_scratch);
        self.probe_classified(&e, m0, &mut probe);
        let fate = self.apply_probe(e, &probe);
        self.probe_scratch = probe;
        fate
    }

    /// The read-only half of [`MotifMatcher::on_edge_classified`]:
    /// everything the matcher decides about `e` *before* its first
    /// state mutation, written into `probe` as a plan for
    /// [`MotifMatcher::apply_probe`]. Takes `&self`, so a worker pool
    /// can run many probes concurrently against the immutable
    /// pre-batch matcher (DESIGN.md §13). Callers must pass the `m0`
    /// [`MotifMatcher::classify`] returned for *this* edge.
    pub fn probe_classified(&self, e: &StreamEdge, m0: MotifId, probe: &mut EdgeProbe) {
        debug_assert_eq!(self.classify(e), Some(m0));
        probe.generation = self.matches.arena_generation();
        probe.m0 = m0;
        probe.extensions.clear();
        probe.joins.clear();
        probe.join_pool.clear();

        // The capped per-endpoint match lists, read once per edge —
        // Alg. 2 line 4's matchList(v1) and matchList(v2), newest-first
        // under the per-endpoint cap: recent matches are the ones whose
        // edges will share window residency with `e`. Each entry
        // carries the vertex's degree within the match, recorded at
        // registration (matches are immutable).
        probe.src_list.clear();
        let src_trunc = self.matches.recent_matches_with_degrees_into(
            e.src,
            self.match_cap,
            &mut probe.src_list,
        );
        probe.dst_list.clear();
        let dst_trunc = self.matches.recent_matches_with_degrees_into(
            e.dst,
            self.match_cap,
            &mut probe.dst_list,
        );

        // Their union (src's then dst's minus duplicates): the existing
        // matches connected to e, before e's own entry exists — as
        // (id, deg of e.src in match, deg of e.dst in match) triples.
        // An entry absent from a row has degree 0 at that endpoint...
        // unless the row read was cap-truncated, in which case the
        // match may sit behind the cap and the degree must come from a
        // chain walk (rare: it needs a hub-length row on the *other*
        // endpoint).
        probe.connected.clear();
        for &(id, du) in &probe.src_list {
            probe.connected.push((id, du, 0));
        }
        // Both lists are ascending by id, so the duplicate detection is
        // a two-pointer merge (`connected[..src_list.len()]` mirrors
        // `src_list` position for position) — O(|src| + |dst|), where
        // a per-entry scan went quadratic at hubs.
        let mut si = 0;
        for &(id, ddeg) in &probe.dst_list {
            while si < probe.src_list.len() && probe.src_list[si].0 < id {
                si += 1;
            }
            if si < probe.src_list.len() && probe.src_list[si].0 == id {
                probe.connected[si].2 = ddeg;
            } else {
                probe.connected.push((id, 0, ddeg));
            }
        }
        if dst_trunc {
            for t in probe.connected.iter_mut() {
                if t.2 == 0 {
                    t.2 = self.matches.get(t.0).degree(e.dst) as u8;
                }
            }
        }
        if src_trunc {
            for t in probe.connected.iter_mut() {
                if t.1 == 0 {
                    t.1 = self.matches.get(t.0).degree(e.src) as u8;
                }
            }
        }

        // Predict the fresh matches apply will create, with the ids
        // they would get *right now* (ids are arena-ordered): the
        // single ⟨e, m0⟩ always lands (singles skip dedup and e's id is
        // new), then each extension candidate that passes the LUT/child
        // checks AND the predicted dedup verdict. The global dedup set
        // is consulted read-only — a hit for a key involving e is
        // impossible short of a 128-bit fingerprint collision, since no
        // existing match can contain the unprocessed e — and
        // within-edge collisions (the same union reachable through two
        // parents) are simulated exactly via `predicted_keys`.
        probe.fresh_ids.clear();
        probe.fresh_meta.clear();
        probe.predicted_keys.clear();
        let next_id = self.matches.next_id();
        probe.fresh_ids.push(next_id);
        probe.fresh_meta.push((1, m0, None));

        // Extension step (Alg. 2 lines 5-8): grow each connected match
        // by e. The candidate list (everything passing LUT + child) is
        // the plan; dedup stays apply's job, because a dedup-rejected
        // `insert_extension` has zero state effect.
        let max_edges = self.motifs.max_motif_edges();
        for &(id, du, dv) in &probe.connected {
            // Dense pre-filter before touching the match's Meta.
            let plen = self.matches.live_len_of(id);
            if plen >= max_edges {
                continue;
            }
            let Some(delta) =
                self.lut
                    .delta_id(e.src_label, du as usize + 1, e.dst_label, dv as usize + 1)
            else {
                continue;
            };
            // Same dense word as the pre-filter — the Meta cache line
            // never loads on this path.
            let motif = self.matches.live_motif_of(id);
            let Some(child) = self.motifs.child_with_delta_by_id(motif, delta) else {
                continue;
            };
            probe.extensions.push((id, child));
            let key = self.matches.extension_key(id, e.id, child);
            if self.matches.dedup_contains(key) || probe.predicted_keys.contains(&key) {
                continue; // predicted dedup rejection: creates no match
            }
            probe.predicted_keys.push(key);
            probe
                .fresh_ids
                .push(MatchId(next_id.0 + probe.fresh_ids.len() as u32));
            probe.fresh_meta.push((plen as u16 + 1, child, Some(id)));
        }

        // Join step (lines 9-18): pair every match that gains edge e
        // with the other matches at its endpoints and recursively
        // absorb the partner's edges. Pairs not involving e were
        // already evaluated when their own last edge arrived, so
        // restricting one side to fresh matches loses nothing. The
        // partner lists are the post-insert per-endpoint reads,
        // reconstructed as the newest-`cap` tail of `pre-insert list ++
        // fresh` (no match dies between the reads and the inserts, and
        // every fresh match contains e, hence sits at both endpoints in
        // insertion order). The predicted fresh ids are only compared
        // against old ids (all strictly smaller) and each other here,
        // so the reconstruction is exact even when apply runs after
        // other commits have shifted the absolute ids.
        probe.partners.clear();
        Self::append_capped_tail(
            &mut probe.partners,
            &probe.src_list,
            &probe.fresh_ids,
            self.match_cap,
            0,
        );
        let prefix = probe.partners.len();
        Self::append_capped_tail(
            &mut probe.partners,
            &probe.dst_list,
            &probe.fresh_ids,
            self.match_cap,
            prefix,
        );
        if probe.partners.is_empty() {
            return;
        }
        // Every fresh match contains `e`, so a fresh *partner* can
        // never join with a fresh base (their overlap is at least
        // {e}); ids are arena-ordered, so "fresh" is one integer
        // compare against this round's first fresh id.
        let first_fresh = probe.fresh_ids[0];
        for ai in 0..probe.fresh_ids.len() {
            let (la, a_motif, a_parent) = probe.fresh_meta[ai];
            let la = la as usize;
            // The predicted fresh match's edges, newest-first — exactly
            // the cell-chain order the real match will have (e at the
            // head, then the parent's chain).
            probe.a_edges.clear();
            probe.a_edges.push(*e);
            if let Some(p) = a_parent {
                probe.a_edges.extend(self.matches.get(p).edges());
            }
            for &b in &probe.partners {
                if b >= first_fresh {
                    continue; // fresh partner: shares e, overlap guaranteed
                }
                // Dense 2-byte length pre-filter: at a hub most pairs
                // die right here, without ever loading a Meta or
                // walking a cell chain.
                let lb = self.matches.live_len_of(b);
                if la + lb > max_edges {
                    continue;
                }
                let mb = self.matches.get(b);
                // Absorb the smaller into the larger (§3: "we consider
                // each edge from the smaller motif match").
                let base_is_fresh = la >= lb;
                let base_motif = if base_is_fresh { a_motif } else { mb.motif() };
                let base_ref = if base_is_fresh {
                    BaseRef::Fresh(ai as u32)
                } else {
                    BaseRef::Old(b)
                };
                let other_len = if base_is_fresh { lb } else { la };
                if other_len == 1 {
                    // The dominant shape (the smaller side is a single
                    // edge) needs no buffers, no recursion and no
                    // separate overlap pass: one fused walk over the
                    // base chain gives the endpoint degrees (bailing
                    // if the edge is already in the base), then the
                    // same LUT + child step `try_join` would take —
                    // absorbing one edge IS the whole join.
                    let x = if base_is_fresh {
                        mb.edges().next().expect("len 1")
                    } else {
                        *e // a fresh match of length 1 is the single {e}
                    };
                    let degs = if base_is_fresh {
                        virtual_degrees_unless_contains(&probe.a_edges, x.src, x.dst, x.id)
                    } else {
                        mb.degrees_unless_contains(x.src, x.dst, x.id)
                    };
                    let Some((du, dv)) = degs else {
                        continue; // overlapping matches are not joinable
                    };
                    if du == 0 && dv == 0 {
                        continue; // not incident to the base sub-graph
                    }
                    let Some(delta) = self.lut.delta_id(x.src_label, du + 1, x.dst_label, dv + 1)
                    else {
                        continue;
                    };
                    let Some(motif) = self.motifs.child_with_delta_by_id(base_motif, delta) else {
                        continue;
                    };
                    let start = probe.join_pool.len() as u32;
                    probe.join_pool.push(x);
                    probe.joins.push(JoinPlan {
                        base: base_ref,
                        start,
                        len: 1,
                        motif,
                    });
                    continue;
                }
                let overlap = if base_is_fresh {
                    mb.edges()
                        .any(|x| probe.a_edges.iter().any(|ae| ae.id == x.id))
                } else {
                    probe.a_edges.iter().any(|ae| mb.contains_edge(ae.id))
                };
                if overlap {
                    continue; // overlapping matches are not joinable
                }
                probe.join_edges.clear();
                probe.join_remaining.clear();
                if base_is_fresh {
                    probe.join_edges.extend_from_slice(&probe.a_edges);
                    probe.join_remaining.extend(mb.edges());
                } else {
                    probe.join_edges.extend(mb.edges());
                    probe.join_remaining.extend_from_slice(&probe.a_edges);
                }
                let base_len = probe.join_edges.len();
                if let Some(motif) = try_join(
                    &self.motifs,
                    &self.lut,
                    &mut probe.join_edges,
                    base_motif,
                    &mut probe.join_remaining,
                ) {
                    // Record (base, absorbed edges in absorption order)
                    // in the pooled buffer; applied after all planning
                    // so this round's joins don't feed themselves.
                    let start = probe.join_pool.len() as u32;
                    probe
                        .join_pool
                        .extend_from_slice(&probe.join_edges[base_len..]);
                    let len = (probe.join_edges.len() - base_len) as u16;
                    probe.joins.push(JoinPlan {
                        base: base_ref,
                        start,
                        len,
                        motif,
                    });
                }
            }
        }
    }

    /// Whether a probe computed by [`MotifMatcher::probe_classified`]
    /// is still exact against the current matcher state: the arena has
    /// not compacted since (ids unremapped) and no mutation inside the
    /// current probe epoch touched either endpoint of `e`. Every probe
    /// read is scoped to `e`'s endpoints — their index rows and the
    /// matches in them, all of which contain an endpoint — and every
    /// mutation dirties all vertices of the matches it creates or
    /// kills, so clean endpoints prove the probe would re-compute
    /// identically. (The one read this does not cover, the read-only
    /// dedup consults, can only diverge via a 128-bit fingerprint
    /// collision — the same accepted class as the signature scheme.)
    pub fn probe_is_valid(&self, e: &StreamEdge, probe: &EdgeProbe) -> bool {
        probe.generation == self.matches.arena_generation()
            && !self.matches.vertex_dirty(e.src)
            && !self.matches.vertex_dirty(e.dst)
    }

    /// The stateful half of [`MotifMatcher::on_edge_classified`]:
    /// execute a probe's plan — the single-edge insert, the extension
    /// candidates (real dedup decides), and the planned joins — with
    /// exactly the mutation sequence the monolithic path performed.
    /// The caller guarantees the probe was computed for `e` and is
    /// valid per [`MotifMatcher::probe_is_valid`] (or was computed
    /// against the current state, as `on_edge_classified` does).
    pub fn apply_probe(&mut self, e: StreamEdge, probe: &EdgeProbe) -> EdgeFate {
        let mut fresh = std::mem::take(&mut self.scratch_fresh);
        fresh.clear();
        if let Some(id) = self.matches.insert_single(e, probe.m0) {
            fresh.push(id);
        }
        for &(parent, motif) in &probe.extensions {
            if let Some(nid) = self.matches.insert_extension(parent, e, motif) {
                fresh.push(nid);
            }
        }
        for plan in &probe.joins {
            let base = match plan.base {
                BaseRef::Old(id) => id,
                // Fresh bases resolve through the REAL fresh list — on
                // a valid probe the predicted acceptance pattern is
                // exact (see probe_classified), so the indices align;
                // the guard only fires at fingerprint-collision odds.
                BaseRef::Fresh(j) => match fresh.get(j as usize) {
                    Some(&id) => id,
                    None => continue,
                },
            };
            let absorbed =
                &probe.join_pool[plan.start as usize..plan.start as usize + plan.len as usize];
            self.matches.insert_join(base, absorbed, plan.motif);
        }
        fresh.clear();
        self.scratch_fresh = fresh;

        // Index maintenance is driven by *kill volume*, not an edge
        // cadence: sweeps are pointless while nothing has died (the
        // bypass-heavy regime), and correctness never depends on them
        // — walks filter on liveness — so the trigger only affects
        // cost, never behaviour. This is also the only safe point to
        // compact: no MatchIds are held across on_edge calls (a
        // reclaim bumps the arena generation, invalidating any
        // outstanding probes).
        if self.matches.dead() >= self.dead_at_last_compact + 2048 {
            self.matches.compact();
            self.dead_at_last_compact = self.matches.dead();
        }
        EdgeFate::Buffered
    }

    /// Start a probe epoch: until [`MotifMatcher::end_probe_epoch`],
    /// the match list records the vertices its mutations touch, which
    /// is what [`MotifMatcher::probe_is_valid`] checks stale probes
    /// against. The parallel ingest brackets each batch commit with
    /// this; the sequential path never enables it and pays nothing.
    pub fn begin_probe_epoch(&mut self) {
        self.matches.begin_dirty_epoch();
    }

    /// End the probe epoch started by
    /// [`MotifMatcher::begin_probe_epoch`] and release its tracking.
    pub fn end_probe_epoch(&mut self) {
        self.matches.end_dirty_epoch();
    }

    /// The matches `M_e` containing an edge about to be assigned (§4).
    pub fn matches_for_edge(&self, e: EdgeId) -> Vec<MatchId> {
        self.matches.matches_at_edge(e)
    }

    /// [`MotifMatcher::matches_for_edge`] into a reused buffer
    /// (replaces its contents).
    pub fn matches_for_edge_into(&self, e: EdgeId, out: &mut Vec<MatchId>) {
        self.matches.matches_at_edge_into(e, out);
    }

    /// Look up a match.
    pub fn get(&self, id: MatchId) -> MatchRef<'_> {
        self.matches.get(id)
    }

    /// Normalised support of the motif behind a match (Eq. 1's
    /// `supp(m_k)`).
    pub fn support(&self, id: MatchId) -> f64 {
        self.motifs.get(self.matches.get(id).motif()).support
    }

    /// `(supp(m_k), |E_k|)` of a *live* match, off the dense tables —
    /// the allocation step sorts candidates by exactly this pair, and
    /// reading it here costs two indexed loads instead of a `Meta`
    /// cache line plus a trie node per candidate.
    #[inline]
    pub fn support_and_len(&self, id: MatchId) -> (f64, usize) {
        let motif = self.matches.live_motif_of(id);
        (
            self.supports[motif.0 as usize],
            self.matches.live_len_of(id),
        )
    }

    /// Notify the matcher that an edge left the window (assigned):
    /// every match containing it dies (§4 — their entries are dropped
    /// from the map).
    pub fn on_edge_assigned(&mut self, e: EdgeId) {
        self.matches.drop_edge(e);
    }

    /// Kill one match without touching its edges (losing bids, §4).
    pub fn kill_match(&mut self, id: MatchId) {
        self.matches.kill(id);
    }

    /// Current arena occupancy (live/dead matches and cells, plus the
    /// compaction generation) — the observability hook `loom stream`
    /// snapshots surface.
    pub fn arena_occupancy(&self) -> crate::matchlist::ArenaOccupancy {
        self.matches.occupancy()
    }

    /// Force a generational arena compaction right now, regardless of
    /// the dead-match trigger. Safe whenever the caller holds no
    /// [`MatchId`]s (they are remapped); behaviour is unchanged by
    /// construction — the property suite drives a reclaiming matcher
    /// against a never-reclaiming one to prove it.
    pub fn reclaim_arena(&mut self) {
        self.matches.reclaim();
        self.dead_at_last_compact = self.matches.dead();
    }

    /// Serialize the matcher's mutable state for a crash-recovery
    /// checkpoint (DESIGN.md §15): the match arena plus the compaction
    /// watermark (which gates the deterministic compaction cadence).
    /// The motif index, LUT, supports and cap are config; probe
    /// scratch is capacity.
    pub fn wal_save(&self, w: &mut loom_wal::ByteWriter) {
        self.matches.wal_save(w);
        w.u64(self.dead_at_last_compact as u64);
    }

    /// Inverse of [`MotifMatcher::wal_save`], applied to a freshly
    /// constructed matcher over the same motif index.
    pub fn wal_load(&mut self, r: &mut loom_wal::ByteReader) -> Result<(), loom_wal::WalError> {
        self.matches.wal_load(r)?;
        self.dead_at_last_compact = r.u64()? as usize;
        Ok(())
    }
}

/// The paper's `corecurse` (Alg. 2 lines 13-18): absorb every edge of
/// `remaining` into `edges` by single-edge trie steps, backtracking over
/// absorption orders. On success returns the motif of the union;
/// `edges`/`remaining` are restored on failure. The union's motif is
/// independent of the absorption order (signatures are multisets), so
/// first-success is canonical.
fn try_join(
    motifs: &MotifIndex,
    lut: &DeltaLut,
    edges: &mut Vec<StreamEdge>,
    motif: MotifId,
    remaining: &mut Vec<StreamEdge>,
) -> Option<MotifId> {
    if remaining.is_empty() {
        return Some(motif);
    }
    for i in 0..remaining.len() {
        let e2 = remaining[i];
        let du = edges.iter().filter(|x| x.touches(e2.src)).count();
        let dv = edges.iter().filter(|x| x.touches(e2.dst)).count();
        if du == 0 && dv == 0 {
            continue; // e2 not incident to the grown sub-graph (yet)
        }
        let Some(delta) = lut.delta_id(e2.src_label, du + 1, e2.dst_label, dv + 1) else {
            continue;
        };
        let Some(child) = motifs.child_with_delta_by_id(motif, delta) else {
            continue;
        };
        remaining.remove(i);
        edges.push(e2);
        if let Some(m) = try_join(motifs, lut, edges, child, remaining) {
            return Some(m);
        }
        edges.pop();
        remaining.insert(i, e2);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::{Label, PatternGraph, VertexId, Workload};
    use loom_motif::{TpsTrie, DEFAULT_PRIME};

    const A: Label = Label(0);
    const B: Label = Label(1);
    const C: Label = Label(2);
    const D: Label = Label(3);

    fn se(id: u32, src: u32, sl: Label, dst: u32, dl: Label) -> StreamEdge {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: sl,
            dst_label: dl,
        }
    }

    /// Matcher for the Fig. 1 workload at T = 40%: motifs are a-b, b-c
    /// and the a-b-c path.
    fn fig1_matcher() -> MotifMatcher {
        let rand = LabelRandomizer::new(4, DEFAULT_PRIME, 42);
        let trie = TpsTrie::build(&Workload::figure1_example(), &rand);
        MotifMatcher::new(trie.motifs(0.4), rand)
    }

    /// Matcher whose only query is the 3-edge path a-b-a-b at 100%, so
    /// every sub-graph of it is a motif (exercises the join step).
    fn path4_matcher() -> MotifMatcher {
        let rand = LabelRandomizer::new(2, DEFAULT_PRIME, 42);
        let workload = Workload::new(vec![(PatternGraph::path("q", vec![A, B, A, B]), 1.0)]);
        let trie = TpsTrie::build(&workload, &rand);
        MotifMatcher::new(trie.motifs(0.5), rand)
    }

    #[test]
    fn non_motif_edge_bypasses() {
        let mut m = fig1_matcher();
        // c-d is only in q3 (10% < 40%): bypass.
        assert_eq!(m.on_edge(se(0, 10, C, 11, D)), EdgeFate::Bypass);
        assert!(m.match_list().is_empty());
    }

    #[test]
    fn single_edge_motif_is_recorded() {
        let mut m = fig1_matcher();
        assert_eq!(m.on_edge(se(0, 1, A, 2, B)), EdgeFate::Buffered);
        assert_eq!(m.match_list().len(), 1);
        assert_eq!(m.matches_for_edge(EdgeId(0)).len(), 1);
    }

    #[test]
    fn extension_builds_abc_path_match() {
        // e1 = a-b at (1,2); e2 = b-c at (2,3): forms the a-b-c motif.
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 2, B, 3, C));
        // Matches: ⟨e0, ab⟩, ⟨e1, bc⟩, ⟨{e0,e1}, abc⟩.
        assert_eq!(m.match_list().len(), 3);
        let at_e0 = m.matches_for_edge(EdgeId(0));
        assert_eq!(at_e0.len(), 2, "e0 is in the single and the path match");
        let sizes: Vec<usize> = at_e0.iter().map(|&id| m.get(id).len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn disconnected_edges_do_not_combine() {
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 5, B, 6, C)); // no shared vertex
        assert_eq!(m.match_list().len(), 2, "two singles, no path");
    }

    #[test]
    fn extension_stops_at_non_motif() {
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 2, B, 3, C));
        let before = m.match_list().len();
        // Another a-b arrives at vertex 2. Growth: the new single
        // ⟨e2, ab⟩ and the second a-b-c path a4-b2-c3 = ⟨{e1,e2}, abc⟩.
        // Crucially NOT the a-b-a path a1-b2-a4 (a q1 sub-graph at
        // 30% < 40%, not a motif) and not any 3-edge shape (no 3-edge
        // motif exists at this threshold).
        m.on_edge(se(2, 4, A, 2, B));
        assert_eq!(m.match_list().len(), before + 2);
        let deepest = (0..3u32)
            .flat_map(|e| m.matches_for_edge(EdgeId(e)))
            .map(|id| m.get(id).len())
            .max()
            .unwrap();
        assert_eq!(deepest, 2);
    }

    #[test]
    fn join_combines_two_multi_edge_matches() {
        // Stream: e0 = a1-b2, e1 = a3-b4 (disjoint), e2 = b2-a3 (bridge).
        // After e2: extensions give b2-a3 singles + two 2-edge paths;
        // the join must produce the full 3-edge path a1-b2-a3-b4.
        let mut m = path4_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 3, A, 4, B));
        m.on_edge(se(2, 2, B, 3, A));
        let at_bridge = m.matches_for_edge(EdgeId(2));
        let max = at_bridge.iter().map(|&id| m.get(id).len()).max().unwrap();
        assert_eq!(max, 3, "full 3-edge path found via join");
        // And the 3-edge match contains all three edges.
        let big = at_bridge
            .iter()
            .find(|&&id| m.get(id).len() == 3)
            .copied()
            .unwrap();
        for e in 0..3u32 {
            assert!(m.get(big).contains_edge(EdgeId(e)));
        }
    }

    #[test]
    fn assigned_edge_kills_matches() {
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 2, B, 3, C));
        m.on_edge_assigned(EdgeId(0));
        // Only ⟨e1, bc⟩ survives.
        assert_eq!(m.match_list().len(), 1);
        assert!(m.matches_for_edge(EdgeId(0)).is_empty());
        assert_eq!(m.matches_for_edge(EdgeId(1)).len(), 1);
    }

    #[test]
    fn support_reflects_motif_frequency() {
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        let id = m.matches_for_edge(EdgeId(0))[0];
        // a-b occurs in all queries: support 100%.
        assert!((m.support(id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_arrival_patterns_do_not_duplicate_matches() {
        // The same a-b-c path reachable through two discovery orders
        // must yield one path match (dedup by edge set + motif).
        let mut m = fig1_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 2, B, 3, C));
        let n = m.match_list().len();
        // Re-processing an already-known combination cannot happen in a
        // real stream (edge ids are unique), but the join step may find
        // the same union via several pair orders — already covered by n
        // being exactly 3.
        assert_eq!(n, 3);
    }

    #[test]
    fn window_cycle_match_via_join_and_extension() {
        // 4-cycle a-b-a-b arriving as its four edges; the cycle itself
        // is a motif in path4? No — the cycle is NOT a sub-graph of the
        // 3-edge path, so the deepest match must stay 3 edges.
        let mut m = path4_matcher();
        m.on_edge(se(0, 1, A, 2, B));
        m.on_edge(se(1, 2, B, 3, A));
        m.on_edge(se(2, 3, A, 4, B));
        m.on_edge(se(3, 4, B, 1, A));
        let deepest = (0..4u32)
            .flat_map(|e| m.matches_for_edge(EdgeId(e)))
            .map(|id| m.get(id).len())
            .max()
            .unwrap();
        assert_eq!(deepest, 3, "cycle itself is not a motif of the path query");
    }

    #[test]
    fn match_cap_is_configurable() {
        let mut m = fig1_matcher();
        assert_eq!(m.match_cap(), MAX_MATCHES_PER_ENDPOINT);
        m.set_match_cap(usize::MAX);
        assert_eq!(m.match_cap(), usize::MAX);
        // A tiny cap still records the single-edge match per edge.
        let mut tight = fig1_matcher();
        tight.set_match_cap(1);
        tight.on_edge(se(0, 1, A, 2, B));
        tight.on_edge(se(1, 2, B, 3, C));
        assert!(tight.match_list().len() >= 2);
    }

    #[test]
    #[should_panic(expected = "zero cap")]
    fn zero_match_cap_rejected() {
        fig1_matcher().set_match_cap(0);
    }
}
